"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_params_command(capsys):
    assert main(["params"]) == 0
    out = capsys.readouterr().out
    assert "DB2_HASH_JOIN" in out
    assert "640000" in out


def test_figure_command_table(capsys):
    code = main(
        [
            "figure", "shared",
            "--queries", "Q14",
            "--deltas", "1,100",
            "--scale", "100",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Q14" in out
    assert "Figure 5" in out


def test_figure_command_csv(capsys):
    main(["figure", "shared", "--queries", "Q14", "--deltas", "1,10",
          "--csv"])
    out = capsys.readouterr().out
    lines = out.strip().splitlines()
    assert lines[0] == "query,1,10"
    assert lines[1].startswith("Q14,")


def test_census_command(capsys):
    assert main(["census", "split", "--queries", "Q14"]) == 0
    out = capsys.readouterr().out
    assert "acc-path" in out


def test_robustness_command(capsys):
    assert main(["robustness", "split", "--queries", "Q14"]) == 0
    out = capsys.readouterr().out
    assert "radius" in out
    assert "Q14" in out


def test_diagram_command(capsys):
    code = main(
        [
            "diagram", "Q14", "dev.table.LINEITEM", "dev.index.LINEITEM",
            "--resolution", "8", "--delta", "100",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "multiplier" in out
    assert "= [" in out  # legend


def test_validate_command(capsys):
    assert main(["validate", "Q14", "--delta", "50"]) == 0
    out = capsys.readouterr().out
    assert "estimation:" in out
    assert "discovery:" in out
    assert "PASS" in out


def _usage_error_line(capsys, argv):
    """Run ``argv``, assert the exit-code-2 contract, return stderr."""
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    captured = capsys.readouterr()
    assert captured.out == ""
    lines = captured.err.splitlines()
    assert len(lines) == 1  # one-line message, no traceback
    assert lines[0].startswith("error: ")
    return lines[0]


def test_unknown_query_rejected(capsys):
    message = _usage_error_line(
        capsys, ["figure", "shared", "--queries", "Q99"]
    )
    assert "'Q99'" in message
    assert "valid choices: Q1," in message


def test_unknown_query_rejected_in_diagram(capsys):
    message = _usage_error_line(capsys, ["diagram", "Q99", "x", "y"])
    assert "'Q99'" in message
    assert "valid choices: Q1," in message


def test_unknown_device_rejected_in_diagram(capsys):
    message = _usage_error_line(
        capsys, ["diagram", "Q14", "not-a-device", "dev.temp"]
    )
    assert "'not-a-device'" in message
    assert "valid choices:" in message


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_bad_scenario_rejected(capsys):
    message = _usage_error_line(capsys, ["figure", "bogus"])
    assert "'bogus'" in message
    assert "valid choices: shared, split, colocated" in message


def test_scenario_flag_accepts_figure_aliases(capsys):
    assert main(["figure", "--scenario", "fig7", "--queries", "Q14",
                 "--deltas", "1,10", "--csv"]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0] == "query,1,10"


def test_figure_command_chart(capsys):
    main(["figure", "shared", "--queries", "Q14", "--deltas", "1,100",
          "--chart", "Q14"])
    out = capsys.readouterr().out
    assert "log GTC" in out


def test_expected_command(capsys):
    assert main(
        ["expected", "split", "--queries", "Q14", "--samples", "200"]
    ) == 0
    out = capsys.readouterr().out
    assert "still-opt" in out
