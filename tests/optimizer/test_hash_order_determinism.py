"""Candidate usage matrices must not depend on PYTHONHASHSEED.

Plan enumeration walks alias sets and multiplies per-alias row counts;
iterating those sets in hash order once made the float products — and
therefore candidate usage vectors — wobble in the last ulp between
processes with different hash seeds.  Rendered results survived (the
winner's total is recomputed as an exact row dot and output is rounded)
but decision-provenance records expose the raw floats, so serial and
``--jobs N`` runs disagreed at the byte level.  The enumeration now
sorts alias sets before folding; this test pins that by hashing one
generated query's usage matrix under two hash seeds that produced
distinct matrices before the fix.
"""

import os
import pathlib
import subprocess
import sys

_SRC = pathlib.Path(__file__).resolve().parents[2] / "src"

_SCRIPT = """
import hashlib
import sys

from repro.experiments.scenarios import scenario
from repro.optimizer import DEFAULT_PARAMETERS
from repro.optimizer.plancache import cached_candidate_plans
from repro.workloads.generator import generated_task

catalog, query = generated_task(7, 34)
config = scenario("colocated")
layout = config.layout_for(query)
region = config.region(layout, 100.0)
candidates = cached_candidate_plans(
    query, catalog, DEFAULT_PARAMETERS, layout, region, cell_cap=16
)
matrix = candidates.usage_matrix
sys.stdout.write(hashlib.sha256(matrix.tobytes()).hexdigest())
"""


def _matrix_digest(hash_seed: int) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = str(_SRC)
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


def test_usage_matrix_is_hash_seed_independent():
    # Seeds 0 and 3 disagreed at the ulp level before alias sets were
    # iterated in sorted order (see selectivity.join_rows and
    # dp.PlanEnumerator.enumerate).
    assert _matrix_digest(0) == _matrix_digest(3)
