"""Batched plan evaluation must be indistinguishable from looping.

The discovery and sweep code answer probes through
``optimize_batch`` / :func:`repro.core.blackbox.batch_optimize`; these
tests pin the contract on real TPC-H queries across all three storage
scenarios, for both black-box implementations: identical plan
signatures, bitwise-identical reported costs, and identical call
accounting, whether the batch arrives as a matrix or as a sequence of
cost vectors.
"""

import numpy as np
import pytest

from repro.catalog import build_tpch_catalog
from repro.core.blackbox import batch_optimize
from repro.experiments.scenarios import scenario
from repro.optimizer.blackbox import (
    CandidateBackedBlackBox,
    OptimizerBlackBox,
)
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.optimizer.parametric import candidate_plans
from repro.workloads import tpch_query

SCENARIOS = ("shared", "split", "colocated")
#: Small queries: the honest box runs a full DP per probe.
QUERIES = ("Q1", "Q6", "Q14")


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


def _setup(query_name, scenario_key, catalog):
    query = tpch_query(query_name, catalog)
    config = scenario(scenario_key)
    layout = config.layout_for(query)
    region = config.region(layout, 100.0)
    candidates = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region
    )
    return query, layout, region, candidates


def _assert_batch_matches_loop(box, region, n_points, seed=0):
    grid = region.sample(np.random.default_rng(seed), n_points)
    matrix = np.vstack([cost.values for cost in grid])

    looped = [box.optimize(cost) for cost in grid]
    calls_before = box.call_count
    from_matrix = box.optimize_batch(matrix)
    assert box.call_count == calls_before + n_points
    from_sequence = box.optimize_batch(grid)

    for one, two, three in zip(looped, from_matrix, from_sequence):
        assert one.signature == two.signature == three.signature
        assert one.total_cost == two.total_cost == three.total_cost


@pytest.mark.parametrize("scenario_key", SCENARIOS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_candidate_backed_box(query_name, scenario_key, catalog):
    __, __, region, candidates = _setup(query_name, scenario_key, catalog)
    box = CandidateBackedBlackBox(candidates)
    _assert_batch_matches_loop(box, region, n_points=16)


@pytest.mark.parametrize("scenario_key", SCENARIOS)
@pytest.mark.parametrize("query_name", QUERIES)
def test_honest_optimizer_box(query_name, scenario_key, catalog):
    query, layout, region, __ = _setup(query_name, scenario_key, catalog)
    box = OptimizerBlackBox(query, catalog, DEFAULT_PARAMETERS, layout)
    _assert_batch_matches_loop(box, region, n_points=4)


class _LoopOnly:
    """Hides ``optimize_batch`` to force the generic fallback path."""

    def __init__(self, inner):
        self._inner = inner

    def optimize(self, cost):
        return self._inner.optimize(cost)


def test_batch_optimize_fallback_matches_native(catalog):
    __, __, region, candidates = _setup("Q14", "split", catalog)
    box = CandidateBackedBlackBox(candidates)
    grid = region.sample(np.random.default_rng(7), 32)
    matrix = np.vstack([cost.values for cost in grid])
    native = batch_optimize(box, region.space, matrix)
    fallback = batch_optimize(_LoopOnly(box), region.space, matrix)
    for one, two in zip(native, fallback):
        assert one.signature == two.signature
        assert one.total_cost == two.total_cost


def test_empty_batch(catalog):
    __, __, region, candidates = _setup("Q6", "shared", catalog)
    box = CandidateBackedBlackBox(candidates)
    before = box.call_count
    assert box.optimize_batch(np.empty((0, region.space.dimension))) == []
    assert box.optimize_batch([]) == []
    assert box.call_count == before


def test_shape_mismatch_rejected(catalog):
    __, __, region, candidates = _setup("Q6", "shared", catalog)
    box = CandidateBackedBlackBox(candidates)
    with pytest.raises(ValueError):
        box.optimize_batch(
            np.ones((3, region.space.dimension + 1))
        )
