"""Tests for repro.optimizer.selectivity."""

import pytest

from repro.catalog import build_tpch_catalog
from repro.optimizer.query import (
    JoinPredicate,
    LocalPredicate,
    QuerySpec,
    TableRef,
)
from repro.optimizer.selectivity import CardinalityModel


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(1)


def _q3ish(catalog):
    query = QuerySpec(
        name="q3ish",
        tables=(
            TableRef("C", "CUSTOMER"),
            TableRef("O", "ORDERS"),
            TableRef("L", "LINEITEM"),
        ),
        joins=(
            JoinPredicate("C", "C_CUSTKEY", "O", "O_CUSTKEY"),
            JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),
        ),
        predicates=(
            LocalPredicate("C", 0.2, "C_MKTSEGMENT"),
            LocalPredicate("O", 0.5, "O_ORDERDATE"),
        ),
        group_by=(("C", "C_MKTSEGMENT"),),
    )
    return CardinalityModel(query, catalog)


def test_base_and_filtered_rows(catalog):
    model = _q3ish(catalog)
    assert model.base_rows("C") == 150_000
    assert model.filtered_rows("C") == pytest.approx(30_000)
    assert model.local_selectivity("O") == 0.5
    assert model.local_selectivity("L") == 1.0


def test_unknown_table_rejected_early(catalog):
    query = QuerySpec("bad", (TableRef("X", "NOPE"),))
    with pytest.raises(KeyError):
        CardinalityModel(query, catalog)


def test_fk_join_selectivity_is_one_over_pk_side(catalog):
    model = _q3ish(catalog)
    edge = model.query.joins[0]  # C_CUSTKEY = O_CUSTKEY
    assert model.join_selectivity(edge) == pytest.approx(1 / 150_000)


def test_explicit_join_selectivity_wins(catalog):
    query = QuerySpec(
        "q",
        (TableRef("A", "ORDERS"), TableRef("B", "LINEITEM")),
        joins=(
            JoinPredicate(
                "A", "O_ORDERKEY", "B", "L_ORDERKEY", selectivity=0.123
            ),
        ),
    )
    model = CardinalityModel(query, catalog)
    assert model.join_selectivity(query.joins[0]) == 0.123


def test_fk_join_preserves_child_cardinality(catalog):
    """|ORDERS join LINEITEM| ~= |LINEITEM| for a key/FK join."""
    model = _q3ish(catalog)
    rows = CardinalityModel(
        QuerySpec(
            "fk",
            (TableRef("O", "ORDERS"), TableRef("L", "LINEITEM")),
            joins=(JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),),
        ),
        catalog,
    ).join_rows(("O", "L"))
    assert rows == pytest.approx(
        catalog.row_count("LINEITEM"), rel=0.01
    )


def test_join_rows_applies_local_selectivities(catalog):
    model = _q3ish(catalog)
    all_rows = model.join_rows(("C", "O", "L"))
    no_filter_model = CardinalityModel(
        QuerySpec(
            "nofilter",
            model.query.tables,
            joins=model.query.joins,
        ),
        catalog,
    )
    unfiltered = no_filter_model.join_rows(("C", "O", "L"))
    assert all_rows == pytest.approx(unfiltered * 0.2 * 0.5, rel=1e-6)


def test_join_rows_monotone_under_subset_growth_for_filters(catalog):
    """Adding a selective join never increases estimated cardinality
    beyond the cross-product bound."""
    model = _q3ish(catalog)
    ol = model.join_rows(("O", "L"))
    col = model.join_rows(("C", "O", "L"))
    assert col <= ol * model.filtered_rows("C")


def test_join_rows_floor_at_one(catalog):
    query = QuerySpec(
        "tiny",
        (TableRef("A", "REGION"), TableRef("B", "NATION")),
        joins=(
            JoinPredicate(
                "A", "R_REGIONKEY", "B", "N_REGIONKEY", selectivity=1e-12
            ),
        ),
    )
    model = CardinalityModel(query, catalog)
    assert model.join_rows(("A", "B")) == 1.0


def test_matches_per_probe_identity(catalog):
    model = _q3ish(catalog)
    outer = ("C", "O")
    combined = model.join_rows(("C", "O", "L"))
    assert model.matches_per_probe(outer, "L") == pytest.approx(
        combined / model.join_rows(outer)
    )


def test_subset_cache_consistency(catalog):
    model = _q3ish(catalog)
    first = model.join_rows(("C", "O"))
    second = model.join_rows(("O", "C"))  # same frozenset
    assert first == second


def test_group_count_capped_by_rows_and_distincts(catalog):
    model = _q3ish(catalog)
    groups = model.group_count()
    assert groups <= 5  # C_MKTSEGMENT has 5 values
    assert model.output_rows() == groups


def test_output_rows_without_grouping(catalog):
    query = QuerySpec(
        "plain",
        (TableRef("O", "ORDERS"), TableRef("L", "LINEITEM")),
        joins=(JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),),
    )
    model = CardinalityModel(query, catalog)
    assert model.output_rows() == model.join_rows(("O", "L"))


def test_carried_width_clamped(catalog):
    model = _q3ish(catalog)
    for alias in ("C", "O", "L"):
        width = model.carried_width(alias)
        assert 8 <= width <= 64
    assert model.tuple_width(("C", "O")) == model.carried_width(
        "C"
    ) + model.carried_width("O")


def test_carried_width_explicit_override(catalog):
    query = QuerySpec(
        "w",
        (TableRef("O", "ORDERS"),),
        carried_width={"O": 120},
    )
    model = CardinalityModel(query, catalog)
    assert model.carried_width("O") == 120


def test_empty_subset_rejected(catalog):
    model = _q3ish(catalog)
    with pytest.raises(ValueError):
        model.join_rows(())
