"""Tests for repro.optimizer.query."""

import pytest

from repro.optimizer.query import (
    JoinPredicate,
    LocalPredicate,
    QuerySpec,
    TableRef,
)


def _chain_query():
    return QuerySpec(
        name="chain",
        tables=(
            TableRef("A", "T1"),
            TableRef("B", "T2"),
            TableRef("C", "T3"),
        ),
        joins=(
            JoinPredicate("A", "X", "B", "Y"),
            JoinPredicate("B", "Y", "C", "Z"),
        ),
        predicates=(LocalPredicate("A", 0.1, "X"),),
    )


class TestValidation:
    def test_duplicate_aliases_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            QuerySpec(
                "q", (TableRef("A", "T1"), TableRef("A", "T2"))
            )

    def test_unknown_alias_in_join_rejected(self):
        with pytest.raises(ValueError, match="unknown alias"):
            QuerySpec(
                "q",
                (TableRef("A", "T1"),),
                joins=(JoinPredicate("A", "X", "B", "Y"),),
            )

    def test_unknown_alias_in_predicate_rejected(self):
        with pytest.raises(ValueError, match="unknown alias"):
            QuerySpec(
                "q",
                (TableRef("A", "T1"),),
                predicates=(LocalPredicate("Z", 0.5),),
            )

    def test_unknown_alias_in_clauses_rejected(self):
        with pytest.raises(ValueError, match="unknown alias"):
            QuerySpec(
                "q", (TableRef("A", "T1"),), group_by=(("Z", "X"),)
            )

    def test_empty_tables_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec("q", ())

    def test_selectivity_bounds(self):
        with pytest.raises(ValueError):
            LocalPredicate("A", 0.0)
        with pytest.raises(ValueError):
            LocalPredicate("A", 1.5)
        with pytest.raises(ValueError):
            JoinPredicate("A", "X", "B", "Y", selectivity=0.0)

    def test_self_loop_join_rejected(self):
        with pytest.raises(ValueError):
            JoinPredicate("A", "X", "A", "Y")


class TestAccessors:
    def test_aliases_and_tables(self):
        query = _chain_query()
        assert query.aliases == ("A", "B", "C")
        assert query.table_of("B") == "T2"
        with pytest.raises(KeyError):
            query.table_of("Z")

    def test_table_names_deduplicate_self_joins(self):
        query = QuerySpec(
            "q",
            (TableRef("L1", "LINEITEM"), TableRef("L2", "LINEITEM")),
            joins=(JoinPredicate("L1", "K", "L2", "K"),),
        )
        assert query.table_names() == ("LINEITEM",)

    def test_predicates_for(self):
        query = _chain_query()
        assert len(query.predicates_for("A")) == 1
        assert query.predicates_for("B") == ()

    def test_joins_between_and_within(self):
        query = _chain_query()
        between = query.joins_between({"A"}, {"B"})
        assert len(between) == 1
        assert between[0].column_for("A") == "X"
        assert query.joins_between({"A"}, {"C"}) == ()
        assert len(query.joins_within({"A", "B", "C"})) == 2
        assert len(query.joins_within({"A", "C"})) == 0

    def test_join_edge_helpers(self):
        edge = JoinPredicate("A", "X", "B", "Y")
        assert edge.aliases() == frozenset({"A", "B"})
        assert edge.other("A") == "B"
        assert edge.column_for("B") == "Y"
        with pytest.raises(KeyError):
            edge.other("Z")
        with pytest.raises(KeyError):
            edge.column_for("Z")


class TestJoinGraph:
    def test_chain_is_connected(self):
        assert _chain_query().is_connected()

    def test_cross_product_is_disconnected(self):
        query = QuerySpec(
            "q", (TableRef("A", "T1"), TableRef("B", "T2"))
        )
        assert not query.is_connected()

    def test_neighbors_of_set(self):
        query = _chain_query()
        assert query.neighbors_of_set({"A"}) == ("B",)
        assert set(query.neighbors_of_set({"B"})) == {"A", "C"}
        assert query.neighbors_of_set({"A", "B", "C"}) == ()

    def test_clause_flags(self):
        query = _chain_query()
        assert not query.has_aggregation
        assert not query.has_final_sort
        grouped = QuerySpec(
            "q",
            (TableRef("A", "T1"),),
            group_by=(("A", "X"),),
            order_by=(("A", "X"),),
        )
        assert grouped.has_aggregation
        assert grouped.has_final_sort
