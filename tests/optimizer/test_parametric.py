"""Tests for exact candidate-plan extraction (parametric mode)."""

import numpy as np
import pytest

from repro.catalog import build_tpch_catalog
from repro.core.costmodel import optimal_plan_index
from repro.core.feasible import FeasibleRegion
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.optimizer.dp import optimize_scalar
from repro.optimizer.parametric import candidate_plans
from repro.optimizer.query import (
    JoinPredicate,
    LocalPredicate,
    QuerySpec,
    TableRef,
)
from repro.storage import StorageLayout


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def setup(catalog):
    query = QuerySpec(
        name="t2",
        tables=(TableRef("O", "ORDERS"), TableRef("L", "LINEITEM")),
        joins=(JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),),
        predicates=(LocalPredicate("L", 0.005, "L_SHIPDATE"),),
    )
    layout = StorageLayout.shared_device(query.table_names())
    region = FeasibleRegion(
        layout.center_costs(), 1000.0, layout.independent_groups()
    )
    candidates = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region, cell_cap=None
    )
    return query, layout, region, candidates


class TestCandidateSet:
    def test_nonempty_and_untruncated(self, setup):
        __, __, __, candidates = setup
        assert len(candidates) >= 2
        assert not candidates.truncated

    def test_signatures_unique(self, setup):
        __, __, __, candidates = setup
        assert len(set(candidates.signatures)) == len(candidates)

    def test_initial_plan_is_center_optimal(self, setup):
        __, layout, __, candidates = setup
        index = candidates.initial_plan_index()
        center = layout.center_costs()
        totals = [p.usage.dot(center) for p in candidates.plans]
        assert totals[index] == min(totals)

    def test_scalar_optimum_always_in_candidate_set(
        self, catalog, setup
    ):
        """The defining property: at ANY feasible cost vector, the
        scalar DP's choice appears in the candidate set with the same
        total cost."""
        query, layout, region, candidates = setup
        rng = np.random.default_rng(3)
        for cost in region.sample(rng, 8):
            scalar = optimize_scalar(
                query, catalog, DEFAULT_PARAMETERS, layout, cost
            )
            best = optimal_plan_index(candidates.usages, cost)
            assert candidates.usages[best].dot(cost) == pytest.approx(
                scalar.usage.dot(cost), rel=1e-9
            )

    def test_every_candidate_wins_somewhere(self, setup):
        from repro.core.candidates import witness_cost_vector

        __, __, region, candidates = setup
        for index in range(len(candidates)):
            witness = witness_cost_vector(
                index, candidates.usages, region
            )
            assert witness is not None

    def test_narrower_region_never_grows_candidates(
        self, catalog, setup
    ):
        query, layout, region, candidates = setup
        narrow_region = FeasibleRegion(
            layout.center_costs(), 2.0, layout.independent_groups()
        )
        narrow = candidate_plans(
            query, catalog, DEFAULT_PARAMETERS, layout, narrow_region,
            cell_cap=None,
        )
        assert set(narrow.signatures) <= set(candidates.signatures)

    def test_exact_lp_backend_agrees(self, catalog, setup):
        query, layout, region, candidates = setup
        exact = candidate_plans(
            query, catalog, DEFAULT_PARAMETERS, layout, region,
            cell_cap=None, exact_lp=True,
        )
        assert set(exact.signatures) == set(candidates.signatures)
