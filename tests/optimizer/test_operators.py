"""Tests for the operator cost formulas."""

import math

import pytest

from repro.catalog import build_tpch_catalog
from repro.optimizer.config import DEFAULT_PARAMETERS, SystemParameters
from repro.optimizer.operators import CostModel, yao_pages
from repro.storage.layout import ObjectKey


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(1)


@pytest.fixture(scope="module")
def costs(catalog):
    return CostModel(catalog, DEFAULT_PARAMETERS)


class TestYao:
    def test_zero_fetches(self):
        assert yao_pages(100, 10, 0) == 0.0

    def test_single_fetch_touches_one_page(self):
        assert yao_pages(100, 10, 1) == pytest.approx(1.0, rel=0.01)

    def test_many_fetches_saturate_at_page_count(self):
        assert yao_pages(100, 10, 1_000_000) == pytest.approx(100.0)

    def test_monotone_in_k(self):
        previous = 0.0
        for k in (1, 10, 100, 1000, 10000):
            current = yao_pages(1000, 20, k)
            assert current >= previous
            previous = current

    def test_fewer_than_k_for_moderate_k(self):
        # Some fetches land on the same page.
        assert yao_pages(100, 10, 200) < 200

    def test_empty_table(self):
        assert yao_pages(0, 10, 5) == 0.0


class TestTableScan:
    def test_charges_full_pages_sequentially(self, catalog, costs):
        result = costs.table_scan("ORDERS", n_predicates=1, output_rows=100.0)
        pages = catalog.n_pages("ORDERS")
        key = ObjectKey.table("ORDERS")
        seeks, read = result.account.io[key]
        assert read == pages
        assert seeks == math.ceil(pages / DEFAULT_PARAMETERS.prefetch_extent)
        assert result.rows == 100.0

    def test_cpu_scales_with_rows_and_predicates(self, catalog, costs):
        no_pred = costs.table_scan("ORDERS", 0, 1.0)
        two_pred = costs.table_scan("ORDERS", 2, 1.0)
        rows = catalog.row_count("ORDERS")
        assert (
            two_pred.account.cpu_instructions
            - no_pred.account.cpu_instructions
        ) == pytest.approx(rows * 2 * DEFAULT_PARAMETERS.cpu_per_predicate)


class TestIndexScan:
    def test_index_only_touches_no_table_pages(self, costs):
        result = costs.index_scan(
            "ORDERS", "O_PK", 0.1, 0, 1000.0, index_only=True
        )
        assert ObjectKey.table("ORDERS") not in result.account.io
        assert ObjectKey.index("ORDERS") in result.account.io

    def test_clustered_scan_cheaper_than_unclustered(self, costs):
        clustered = costs.index_scan("ORDERS", "O_PK", 0.1, 0, 1000.0)
        unclustered = costs.index_scan("ORDERS", "O_OD", 0.1, 0, 1000.0)
        clustered_io = clustered.account.io[ObjectKey.table("ORDERS")]
        unclustered_io = unclustered.account.io[ObjectKey.table("ORDERS")]
        assert clustered_io[0] < unclustered_io[0]  # far fewer seeks

    def test_leaf_pages_scale_with_selectivity(self, catalog, costs):
        small = costs.index_scan("LINEITEM", "L_SD", 0.01, 0, 1.0)
        large = costs.index_scan("LINEITEM", "L_SD", 0.5, 0, 1.0)
        key = ObjectKey.index("LINEITEM")
        assert small.account.io[key][1] < large.account.io[key][1]

    def test_selectivity_validation(self, costs):
        with pytest.raises(ValueError):
            costs.index_scan("ORDERS", "O_PK", 0.0, 0, 1.0)
        with pytest.raises(ValueError):
            costs.index_scan("ORDERS", "O_PK", 1.5, 0, 1.0)


class TestIndexProbes:
    def test_resident_index_probes_capped_by_leaf_count(self, catalog, costs):
        # NATION's index is tiny: a million probes must not charge a
        # million page reads.
        account = costs.index_probes("NATION", "N_PK", 1e6, 1.0)
        seeks, pages = account.io[ObjectKey.index("NATION")]
        assert pages < 100

    def test_huge_index_charges_per_probe(self, catalog):
        # Shrink the buffer pool so LINEITEM's index cannot stay
        # resident (at SF 1 it would fit the default 2.5 GB pool).
        params = SystemParameters(opt_buffpage=1000)
        tight = CostModel(catalog, params)
        account = tight.index_probes("LINEITEM", "L_PK", 1e6, 1.0,
                                     index_only=True)
        __, pages = account.io[ObjectKey.index("LINEITEM")]
        assert pages >= 1e6  # at least one uncached level per probe

    def test_index_only_skips_table(self, costs):
        account = costs.index_probes(
            "ORDERS", "O_PK", 1000.0, 1.0, index_only=True
        )
        assert ObjectKey.table("ORDERS") not in account.io

    def test_matches_drive_table_fetches(self, costs):
        few = costs.index_probes("ORDERS", "O_PK", 1000.0, 1.0)
        many = costs.index_probes("ORDERS", "O_PK", 1000.0, 50.0)
        key = ObjectKey.table("ORDERS")
        assert many.io[key][1] > few.io[key][1]

    def test_validation(self, costs):
        with pytest.raises(ValueError):
            costs.index_probes("ORDERS", "O_PK", -1.0, 1.0)


class TestRescans:
    def test_resident_inner_pays_io_once(self, catalog, costs):
        account = costs.rescans("NATION", n_probes=1000.0, n_predicates=0)
        seeks, pages = account.io[ObjectKey.table("NATION")]
        assert pages == catalog.n_pages("NATION")
        # CPU still paid per probe.
        assert account.cpu_instructions == pytest.approx(
            1000.0 * 25 * DEFAULT_PARAMETERS.cpu_per_tuple
        )

    def test_nonresident_inner_pays_io_every_time(self, catalog):
        params = SystemParameters(opt_buffpage=1000)
        tight = CostModel(catalog, params)
        account = tight.rescans("LINEITEM", n_probes=3.0, n_predicates=0)
        __, pages = account.io[ObjectKey.table("LINEITEM")]
        assert pages == pytest.approx(3 * catalog.n_pages("LINEITEM"))


class TestSort:
    def test_in_memory_sort_has_no_io(self, costs):
        account = costs.sort(rows=1000.0, width=32.0)
        assert not account.io
        assert account.cpu_instructions > 0

    def test_external_sort_spills_to_temp(self, costs):
        account = costs.sort(rows=5e8, width=64.0)
        assert ObjectKey.temp() in account.io
        seeks, pages = account.io[ObjectKey.temp()]
        # Writes + reads of the whole input at least once.
        assert pages >= 2 * costs.pages_for(5e8, 64.0)

    def test_zero_rows_is_free(self, costs):
        account = costs.sort(0.0, 32.0)
        assert account.cpu_instructions == 0
        assert not account.io

    def test_more_passes_for_larger_inputs(self, costs):
        small = costs.sort(5e8, 64.0).io[ObjectKey.temp()][1]
        params = SystemParameters(sort_merge_fanin=2, opt_sortheap=1000)
        tight = CostModel(costs.catalog, params)
        large = tight.sort(5e8, 64.0).io[ObjectKey.temp()][1]
        assert large > small  # more merge passes with tiny heap/fanin


class TestHashJoin:
    def test_in_memory_build_no_temp(self, costs):
        account = costs.hash_join(1e5, 32.0, 1e6, 32.0, 1e6)
        assert ObjectKey.temp() not in account.io

    def test_oversized_build_partitions_to_temp(self, costs):
        account = costs.hash_join(1e9, 64.0, 1e6, 32.0, 1e6)
        assert ObjectKey.temp() in account.io

    def test_cpu_scales_with_both_inputs(self, costs):
        small = costs.hash_join(1e3, 32.0, 1e3, 32.0, 1e3)
        large = costs.hash_join(1e6, 32.0, 1e6, 32.0, 1e3)
        assert large.cpu_instructions > small.cpu_instructions


class TestAggregateAndMerge:
    def test_merge_join_is_cpu_only(self, costs):
        account = costs.merge_join(1e6, 1e6, 1e6)
        assert not account.io
        assert account.cpu_instructions > 0

    def test_aggregate_spills_for_huge_group_counts(self, costs):
        in_memory = costs.aggregate(1e6, 32.0, 100.0)
        spilling = costs.aggregate(1e9, 32.0, 5e8)
        assert ObjectKey.temp() not in in_memory.io
        assert ObjectKey.temp() in spilling.io


def test_pages_for_rounds_up(costs):
    assert costs.pages_for(1.0, 100.0) == 1
    assert costs.pages_for(0.0, 100.0) == 0.0
    per_page = (4096 * 0.96) // 100
    assert costs.pages_for(per_page + 1, 100.0) == 2
