"""Tests for the DP enumerator (scalar and parametric modes)."""

import numpy as np
import pytest

from repro.catalog import build_tpch_catalog
from repro.core.candidates import pareto_undominated_indices
from repro.core.vectors import CostVector
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.optimizer.dp import (
    ParetoPruner,
    PlanEnumerator,
    ScalarPruner,
    enumerate_root_plans,
    optimize_scalar,
)
from repro.optimizer.query import (
    JoinPredicate,
    LocalPredicate,
    QuerySpec,
    TableRef,
)
from repro.storage import StorageLayout


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


def _query():
    return QuerySpec(
        name="t3",
        tables=(
            TableRef("C", "CUSTOMER"),
            TableRef("O", "ORDERS"),
            TableRef("L", "LINEITEM"),
        ),
        joins=(
            JoinPredicate("C", "C_CUSTKEY", "O", "O_CUSTKEY"),
            JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),
        ),
        predicates=(
            LocalPredicate("O", 0.05, "O_ORDERDATE"),
            LocalPredicate("L", 0.01, "L_SHIPDATE"),
        ),
    )


def _layout(query):
    return StorageLayout.shared_device(query.table_names())


class TestBasePlans:
    def test_every_alias_has_a_table_scan(self, catalog):
        query = _query()
        enum = PlanEnumerator(query, catalog, DEFAULT_PARAMETERS,
                              _layout(query))
        for alias in query.aliases:
            signatures = [p.signature for p in enum.base_plans(alias)]
            assert f"TBSCAN({alias})" in signatures

    def test_sargable_predicate_enables_index_scan(self, catalog):
        query = _query()
        enum = PlanEnumerator(query, catalog, DEFAULT_PARAMETERS,
                              _layout(query))
        signatures = [p.signature for p in enum.base_plans("L")]
        assert any("IXSCAN(L,L_SD" in s for s in signatures)

    def test_order_scan_on_join_column(self, catalog):
        query = _query()
        enum = PlanEnumerator(query, catalog, DEFAULT_PARAMETERS,
                              _layout(query))
        plans = enum.base_plans("O")
        ordered = [p for p in plans if p.order == ("O", "O_ORDERKEY")]
        assert ordered  # O_PK delivers the join order

    def test_base_plan_cache(self, catalog):
        query = _query()
        enum = PlanEnumerator(query, catalog, DEFAULT_PARAMETERS,
                              _layout(query))
        assert enum.base_plans("C") is enum.base_plans("C")

    def test_rows_reflect_local_selectivity(self, catalog):
        query = _query()
        enum = PlanEnumerator(query, catalog, DEFAULT_PARAMETERS,
                              _layout(query))
        rows = enum.base_plans("O")[0].rows
        assert rows == pytest.approx(catalog.row_count("ORDERS") * 0.05)


class TestScalarMode:
    def test_returns_single_cheapest_plan(self, catalog):
        query = _query()
        layout = _layout(query)
        best = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout,
            layout.center_costs(),
        )
        assert best.node.aliases() == frozenset(query.aliases)

    def test_optimum_shifts_with_costs(self, catalog):
        query = _query()
        layout = _layout(query)
        center = layout.center_costs()
        cheap_seek = center.perturbed({"disk.seek": 1e-4})
        expensive_seek = center.perturbed({"disk.seek": 1e4})
        plan_cheap = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout, cheap_seek
        )
        plan_expensive = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout, expensive_seek
        )
        assert plan_cheap.signature != plan_expensive.signature

    def test_scalar_never_beaten_by_parametric_plan(self, catalog):
        """The scalar optimum matches the best plan in the Pareto set."""
        query = _query()
        layout = _layout(query)
        rng = np.random.default_rng(7)
        plans, truncated = enumerate_root_plans(
            query, catalog, DEFAULT_PARAMETERS, layout, cell_cap=None
        )
        assert not truncated
        for _ in range(5):
            factors = 10.0 ** rng.uniform(-2, 2, layout.space.dimension)
            cost = CostVector(
                layout.space, layout.center_costs().values * factors
            )
            scalar_best = optimize_scalar(
                query, catalog, DEFAULT_PARAMETERS, layout, cost
            )
            pareto_best = min(p.usage.dot(cost) for p in plans)
            assert scalar_best.usage.dot(cost) == pytest.approx(
                pareto_best, rel=1e-9
            )


class TestParametricMode:
    def test_root_set_is_pareto_minimal(self, catalog):
        query = _query()
        layout = _layout(query)
        plans, __ = enumerate_root_plans(
            query, catalog, DEFAULT_PARAMETERS, layout, cell_cap=None
        )
        usages = [p.usage for p in plans]
        undominated = pareto_undominated_indices(usages, tol=1e-9)
        assert sorted(undominated) == list(range(len(plans)))

    def test_cell_cap_reports_truncation(self, catalog):
        query = _query()
        layout = StorageLayout.per_table_and_index(query.table_names())
        __, truncated_tight = enumerate_root_plans(
            query, catalog, DEFAULT_PARAMETERS, layout, cell_cap=2
        )
        assert truncated_tight

    def test_pareto_pruner_requires_center_for_cap(self):
        with pytest.raises(ValueError):
            ParetoPruner(cell_cap=10)


class TestPruners:
    def test_scalar_pruner_keeps_ordered_winners(self, catalog):
        query = _query()
        layout = _layout(query)
        enum = PlanEnumerator(query, catalog, DEFAULT_PARAMETERS, layout)
        plans = enum.base_plans("O")
        pruned = ScalarPruner(layout.center_costs()).prune(plans)
        orders = {p.order for p in pruned}
        assert len(pruned) == len(orders)  # one winner per order group

    def test_pareto_pruner_removes_dominated(self, catalog):
        query = _query()
        layout = _layout(query)
        enum = PlanEnumerator(query, catalog, DEFAULT_PARAMETERS, layout)
        plans = enum.base_plans("L")
        doubled = plans + plans  # duplicates must collapse
        pruned = ParetoPruner().prune(doubled)
        signatures = [p.signature for p in pruned]
        assert len(signatures) == len(set(signatures))


class TestStructure:
    def test_cross_product_query_raises(self, catalog):
        query = QuerySpec(
            "cross",
            (TableRef("A", "NATION"), TableRef("B", "REGION")),
        )
        layout = StorageLayout.shared_device(query.table_names())
        enum = PlanEnumerator(query, catalog, DEFAULT_PARAMETERS, layout)
        with pytest.raises(RuntimeError, match="connected"):
            enum.enumerate(ScalarPruner(layout.center_costs()))

    def test_single_table_query(self, catalog):
        query = QuerySpec(
            "single",
            (TableRef("L", "LINEITEM"),),
            predicates=(LocalPredicate("L", 0.01, "L_SHIPDATE"),),
            group_by=(("L", "L_RETURNFLAG"),),
        )
        layout = StorageLayout.shared_device(query.table_names())
        best = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout,
            layout.center_costs(),
        )
        assert best.signature.startswith("GRPBY(")

    def test_group_by_adds_aggregate_and_order_by_adds_sort(self, catalog):
        query = QuerySpec(
            "go",
            (TableRef("O", "ORDERS"), TableRef("L", "LINEITEM")),
            joins=(JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),),
            group_by=(("O", "O_ORDERPRIORITY"),),
            order_by=(("O", "O_ORDERPRIORITY"),),
        )
        layout = StorageLayout.shared_device(query.table_names())
        best = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout,
            layout.center_costs(),
        )
        assert "GRPBY(" in best.signature
        assert best.signature.startswith("SORT(")

    def test_self_join_aliases_supported(self, catalog):
        query = QuerySpec(
            "self",
            (TableRef("L1", "LINEITEM"), TableRef("L2", "LINEITEM")),
            joins=(
                JoinPredicate(
                    "L1", "L_ORDERKEY", "L2", "L_ORDERKEY",
                    selectivity=1e-9,
                ),
            ),
            predicates=(LocalPredicate("L1", 0.001, "L_SHIPDATE"),),
        )
        layout = StorageLayout.shared_device(query.table_names())
        best = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout,
            layout.center_costs(),
        )
        assert best.node.aliases() == frozenset({"L1", "L2"})


class TestInterestingOrders:
    def test_order_by_satisfied_by_index_avoids_sort(self, catalog):
        """When an access path already delivers the ORDER BY order, the
        optimizer can skip the final sort — and does so when random
        I/O is cheap enough to make the ordered index scan win."""
        query = QuerySpec(
            "ordered",
            (TableRef("O", "ORDERS"),),
            predicates=(LocalPredicate("O", 0.001, "O_ORDERDATE"),),
            order_by=(("O", "O_ORDERDATE"),),
        )
        layout = StorageLayout.shared_device(query.table_names())
        center = layout.center_costs()
        cheap_random = center.perturbed({"disk.seek": 1e-6})
        plan = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout, cheap_random
        )
        assert "IXSCAN(O,O_OD" in plan.signature
        assert not plan.signature.startswith("SORT(")

    def test_order_by_unsatisfied_forces_sort(self, catalog):
        query = QuerySpec(
            "unordered",
            (TableRef("O", "ORDERS"),),
            predicates=(LocalPredicate("O", 0.001, "O_ORDERDATE"),),
            order_by=(("O", "O_TOTALPRICE"),),  # no index on this
        )
        layout = StorageLayout.shared_device(query.table_names())
        plan = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout,
            layout.center_costs(),
        )
        assert plan.signature.startswith("SORT(")

    def test_merge_join_exploits_clustered_pk_order(self, catalog):
        """The Q3-style MSJOIN over L_OK demonstrates interesting-order
        propagation through joins (pinned by the golden plans too)."""
        query = QuerySpec(
            "mj",
            (TableRef("O", "ORDERS"), TableRef("L", "LINEITEM")),
            joins=(JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),),
        )
        layout = StorageLayout.shared_device(query.table_names())
        enum = PlanEnumerator(query, catalog, DEFAULT_PARAMETERS, layout)
        plans = enum.enumerate(ScalarPruner(layout.center_costs()))
        signatures = [p.signature for p in plans]
        assert any("MSJOIN" in s and "SORT(IXSCAN" not in s
                   for s in signatures) or any(
            "MSJOIN" in s for s in signatures
        )
