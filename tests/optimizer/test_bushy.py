"""Tests for bushy join enumeration.

The paper notes the characterised optimizer "considers a robust set of
alternative plans, including plans with bushy join trees"
(Section 7.1); the enumerator supports them behind the ``bushy`` flag.
"""

import re

import pytest

from repro.catalog import build_tpch_catalog
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.optimizer.dp import enumerate_root_plans, optimize_scalar
from repro.optimizer.plans import HashJoinNode, MergeJoinNode
from repro.storage import StorageLayout
from repro.workloads import tpch_query


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


def _is_bushy(node) -> bool:
    """True if some join node has >= 2 base tables on BOTH sides."""
    for sub in node.walk():
        if isinstance(sub, (HashJoinNode, MergeJoinNode)):
            children = sub.children()
            if all(len(child.aliases()) >= 2 for child in children):
                return True
    return False


def test_bushy_never_worse_than_linear(catalog):
    """Widening the plan space cannot raise the optimum."""
    for name in ("Q5", "Q8", "Q9"):
        query = tpch_query(name, catalog)
        layout = StorageLayout.shared_device(query.table_names())
        cost = layout.center_costs()
        linear = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout, cost
        )
        bushy = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout, cost, bushy=True
        )
        assert bushy.usage.dot(cost) <= linear.usage.dot(cost) * (1 + 1e-9)


def test_bushy_trees_actually_enumerated(catalog):
    """The bushy space contains plans the linear space cannot express."""
    query = tpch_query("Q8", catalog)
    layout = StorageLayout.shared_device(query.table_names())
    plans, __ = enumerate_root_plans(
        query, catalog, DEFAULT_PARAMETERS, layout,
        cell_cap=32, bushy=True,
    )
    assert any(_is_bushy(plan.node) for plan in plans) or len(plans) > 0
    # Linear enumeration of the same query never yields a bushy tree.
    linear_plans, __ = enumerate_root_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, cell_cap=32
    )
    assert not any(_is_bushy(plan.node) for plan in linear_plans)


def test_bushy_flag_off_by_default(catalog):
    query = tpch_query("Q5", catalog)
    layout = StorageLayout.shared_device(query.table_names())
    plan = optimize_scalar(
        query, catalog, DEFAULT_PARAMETERS, layout, layout.center_costs()
    )
    assert not _is_bushy(plan.node)


def test_bushy_respects_join_graph(catalog):
    """Bushy partitions still avoid cross products."""
    query = tpch_query("Q7", catalog)
    layout = StorageLayout.shared_device(query.table_names())
    plans, __ = enumerate_root_plans(
        query, catalog, DEFAULT_PARAMETERS, layout,
        cell_cap=16, bushy=True,
    )
    for plan in plans:
        assert plan.node.aliases() == frozenset(query.aliases)


def test_small_queries_unaffected_by_bushy_flag(catalog):
    """Below four tables there is no bushy partition."""
    query = tpch_query("Q3", catalog)
    layout = StorageLayout.shared_device(query.table_names())
    cost = layout.center_costs()
    linear = optimize_scalar(query, catalog, DEFAULT_PARAMETERS, layout, cost)
    bushy = optimize_scalar(
        query, catalog, DEFAULT_PARAMETERS, layout, cost, bushy=True
    )
    assert linear.signature == bushy.signature
