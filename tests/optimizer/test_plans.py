"""Tests for plan nodes and signatures."""

from repro.optimizer.plans import (
    AggregateNode,
    HashJoinNode,
    IndexProbeNode,
    IndexScanNode,
    MergeJoinNode,
    NestedLoopJoinNode,
    SortNode,
    TableScanNode,
)


def _scan(alias="L"):
    return TableScanNode(alias, "LINEITEM")


def test_leaf_signatures():
    assert _scan().signature() == "TBSCAN(L)"
    ix = IndexScanNode("L", "LINEITEM", "L_SD", "L_SHIPDATE")
    assert ix.signature() == "IXSCAN(L,L_SD)"
    ix_only = IndexScanNode("L", "LINEITEM", "L_SD", "L_SHIPDATE", True)
    assert ix_only.signature() == "IXSCAN(L,L_SD,IXONLY)"
    probe = IndexProbeNode("P", "PART", "P_PK", "P_PARTKEY")
    assert probe.signature() == "IXPROBE(P,P_PK)"


def test_join_signatures_are_structural():
    nl = NestedLoopJoinNode(
        _scan(), IndexProbeNode("P", "PART", "P_PK", "P_PARTKEY")
    )
    assert nl.signature() == "NLJOIN(TBSCAN(L),IXPROBE(P,P_PK))"
    hj = HashJoinNode(_scan("A"), _scan("B"))
    assert hj.signature() == "HSJOIN(TBSCAN(A),TBSCAN(B))"
    # Build/probe roles matter: swapping sides changes identity.
    assert hj.signature() != HashJoinNode(_scan("B"), _scan("A")).signature()


def test_sort_and_aggregate_signatures():
    sort = SortNode(_scan(), (("L", "L_ORDERKEY"),))
    assert sort.signature() == "SORT(TBSCAN(L),L.L_ORDERKEY)"
    agg = AggregateNode(sort, (("L", "L_ORDERKEY"),))
    assert agg.signature() == "GRPBY(SORT(TBSCAN(L),L.L_ORDERKEY))"


def test_merge_join_children_and_aliases():
    left = SortNode(_scan("A"), (("A", "K"),))
    right = _scan("B")
    merge = MergeJoinNode(left, right, ("A", "K"), ("B", "F"))
    assert merge.children() == (left, right)
    assert merge.aliases() == frozenset({"A", "B"})


def test_aliases_collects_subtree():
    nl = NestedLoopJoinNode(
        HashJoinNode(_scan("A"), _scan("B")),
        IndexProbeNode("C", "PART", "P_PK", "P_PARTKEY"),
    )
    assert nl.aliases() == frozenset({"A", "B", "C"})


def test_walk_preorder():
    hj = HashJoinNode(_scan("A"), _scan("B"))
    nodes = list(hj.walk())
    assert nodes[0] is hj
    assert len(nodes) == 3


def test_identical_structures_share_signature():
    a = HashJoinNode(_scan("A"), _scan("B"))
    b = HashJoinNode(_scan("A"), _scan("B"))
    assert a.signature() == b.signature()
    assert a == b  # frozen dataclasses compare structurally
