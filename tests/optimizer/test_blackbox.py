"""Tests for the optimizer black-box facades."""

import numpy as np
import pytest

from repro.catalog import build_tpch_catalog
from repro.core.blackbox import BlackBoxOptimizer
from repro.core.feasible import FeasibleRegion
from repro.optimizer.blackbox import CandidateBackedBlackBox, OptimizerBlackBox
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.optimizer.parametric import CandidateSet, candidate_plans
from repro.optimizer.query import (
    JoinPredicate,
    LocalPredicate,
    QuerySpec,
    TableRef,
)
from repro.storage import StorageLayout


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def setup(catalog):
    query = QuerySpec(
        name="bb",
        tables=(TableRef("O", "ORDERS"), TableRef("L", "LINEITEM")),
        joins=(JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),),
        predicates=(LocalPredicate("L", 0.01, "L_SHIPDATE"),),
    )
    layout = StorageLayout.shared_device(query.table_names())
    region = FeasibleRegion(
        layout.center_costs(), 100.0, layout.independent_groups()
    )
    candidates = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region, cell_cap=None
    )
    return query, layout, region, candidates


def test_honest_box_conforms_to_protocol(catalog, setup):
    query, layout, __, __ = setup
    box = OptimizerBlackBox(query, catalog, DEFAULT_PARAMETERS, layout)
    assert isinstance(box, BlackBoxOptimizer)
    choice = box.optimize(layout.center_costs())
    assert choice.total_cost > 0
    assert box.call_count == 1


def test_fast_box_matches_honest_box_in_region(catalog, setup):
    query, layout, region, candidates = setup
    honest = OptimizerBlackBox(query, catalog, DEFAULT_PARAMETERS, layout)
    fast = CandidateBackedBlackBox(candidates)
    rng = np.random.default_rng(11)
    for cost in region.sample(rng, 6):
        honest_choice = honest.optimize(cost)
        fast_choice = fast.optimize(cost)
        # Same optimal total cost; signatures agree unless two plans
        # tie exactly.
        assert fast_choice.total_cost == pytest.approx(
            honest_choice.total_cost, rel=1e-9
        )
        assert fast_choice.signature == honest_choice.signature


def test_fast_box_ground_truth_access(setup):
    __, __, __, candidates = setup
    fast = CandidateBackedBlackBox(candidates)
    signature = candidates.signatures[0]
    assert fast.usage_of(signature) is candidates.plans[0].usage
    with pytest.raises(KeyError):
        fast.usage_of("NOPE")


def test_fast_box_rejects_empty_set(setup):
    __, __, region, __ = setup
    empty = CandidateSet("q", [], region, truncated=False)
    with pytest.raises(ValueError):
        CandidateBackedBlackBox(empty)


def test_call_counting(setup):
    __, layout, __, candidates = setup
    fast = CandidateBackedBlackBox(candidates)
    for _ in range(3):
        fast.optimize(layout.center_costs())
    assert fast.call_count == 3
