"""Tests for repro.optimizer.config (the Section 7.3 parameter table)."""

import pytest

from repro.optimizer.config import DEFAULT_PARAMETERS, SystemParameters


def test_default_parameters_reproduce_paper_table():
    """The exact Section 7.3 table from the paper (TAB-PARAMS)."""
    expected = [
        ("DB2_EXTENDED_OPTIMIZATION", "YES"),
        ("DB2_ANTIJOIN", "Y"),
        ("DB2_CORRELATED_PREDICATES", "Y"),
        ("DB2_NEW_CORR_SQ_FF", "Y"),
        ("DB2_VECTOR", "Y"),
        ("DB2_HASH_JOIN", "Y"),
        ("DB2_BINSORT", "Y"),
        ("INTRA_PARALLEL", "YES"),
        ("FEDERATED", "NO"),
        ("DFT_DEGREE", "32"),
        ("AVG_APPLS", "1"),
        ("LOCKLIST", "16384"),
        ("DFT_QUERYOPT", "7"),
        ("OPT_BUFFPAGE", "640000"),
        ("OPT_SORTHEAP", "128000"),
    ]
    assert DEFAULT_PARAMETERS.as_db2_table() == expected


def test_buffer_pool_is_2_5_gb():
    """Section 7.3: db2fopt faked a 2.5 GB buffer pool."""
    assert DEFAULT_PARAMETERS.bufferpool_bytes == 640_000 * 4096
    assert DEFAULT_PARAMETERS.bufferpool_bytes == pytest.approx(
        2.5 * 1024**3, rel=0.05
    )


def test_sort_heap_is_512_mb():
    assert DEFAULT_PARAMETERS.sortheap_bytes == pytest.approx(
        512 * 1024**2, rel=0.05
    )


def test_residency_budget_below_buffer_pool():
    assert (
        DEFAULT_PARAMETERS.bufferpool_resident_pages()
        < DEFAULT_PARAMETERS.opt_buffpage
    )


def test_validation():
    with pytest.raises(ValueError):
        SystemParameters(opt_buffpage=0)
    with pytest.raises(ValueError):
        SystemParameters(prefetch_extent=0)
    with pytest.raises(ValueError):
        SystemParameters(sort_merge_fanin=1)


def test_flags_render_as_db2_spellings():
    params = SystemParameters(hash_join=False, federated=True)
    table = dict(params.as_db2_table())
    assert table["DB2_HASH_JOIN"] == "N"
    assert table["FEDERATED"] == "YES"
