"""Tests for the content-addressed candidate-set disk cache."""

import dataclasses

import numpy as np
import pytest

from repro.catalog import build_tpch_catalog
from repro.experiments.scenarios import scenario
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.optimizer.parametric import candidate_plans
from repro.optimizer.plancache import (
    PlanCache,
    cached_candidate_plans,
    default_cache_dir,
)


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def setup(catalog):
    from repro.workloads import tpch_query

    query = tpch_query("Q6", catalog)
    config = scenario("shared")
    layout = config.layout_for(query)
    region = config.region(layout, 10.0)
    return query, layout, region


def test_roundtrip_returns_identical_set(tmp_path, catalog, setup):
    query, layout, region = setup
    cache = PlanCache(tmp_path)
    cold = cached_candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region,
        cache=cache, scenario_key="shared",
    )
    warm = cached_candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region,
        cache=cache, scenario_key="shared",
    )
    uncached = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region
    )
    for result in (cold, warm):
        assert result.query_name == uncached.query_name
        assert result.signatures == uncached.signatures
        assert result.truncated == uncached.truncated
        assert np.array_equal(result.usage_matrix, uncached.usage_matrix)
    assert any(tmp_path.rglob("*.pkl"))


def test_no_cache_is_passthrough(catalog, setup):
    query, layout, region = setup
    result = cached_candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region, cache=None
    )
    assert result.signatures


def test_key_sensitivity(tmp_path, catalog, setup):
    query, layout, region = setup
    cache = PlanCache(tmp_path)

    def key(**overrides):
        kwargs = dict(
            query_name=query.name,
            scenario_key="shared",
            delta=region.delta,
            params=DEFAULT_PARAMETERS,
            cell_cap=64,
            catalog=catalog,
        )
        kwargs.update(overrides)
        return cache.key_for(**kwargs)

    base = key()
    assert key() == base  # deterministic
    assert key(query_name="Q5") != base
    assert key(scenario_key="split") != base
    assert key(delta=region.delta * 2) != base
    assert key(cell_cap=None) != base
    assert key(catalog=build_tpch_catalog(10)) != base
    slower_cpu = dataclasses.replace(
        DEFAULT_PARAMETERS,
        cpu_per_tuple=DEFAULT_PARAMETERS.cpu_per_tuple * 2,
    )
    assert key(params=slower_cpu) != base


def test_corrupt_entry_is_a_miss(tmp_path, catalog, setup, caplog):
    query, layout, region = setup
    cache = PlanCache(tmp_path)
    cached_candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region,
        cache=cache, scenario_key="shared",
    )
    corrupted = [path for path in tmp_path.rglob("*.pkl")]
    for path in corrupted:
        path.write_bytes(b"not a pickle")
    # Corruption must be recomputed (with a WARNING naming the entry),
    # then re-written intact.
    with caplog.at_level("WARNING", logger="repro"):
        result = cached_candidate_plans(
            query, catalog, DEFAULT_PARAMETERS, layout, region,
            cache=cache, scenario_key="shared",
        )
    assert result.signatures
    warnings = [
        record for record in caplog.records
        if record.levelname == "WARNING"
        and "corrupt" in record.getMessage()
    ]
    assert warnings
    assert str(corrupted[0]) in warnings[0].getMessage()
    key = cache.key_for(
        query_name=query.name, scenario_key="shared", delta=region.delta,
        params=DEFAULT_PARAMETERS, cell_cap=64, catalog=catalog,
    )
    assert cache.load(key) is not None


def test_unwritable_cache_never_fails(catalog, setup):
    query, layout, region = setup
    cache = PlanCache("/proc/no-such-place/cache")
    result = cached_candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region,
        cache=cache, scenario_key="shared",
    )
    assert result.signatures


def test_default_cache_dir_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert default_cache_dir() == ".repro-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/elsewhere")
    assert default_cache_dir() == "/tmp/elsewhere"
    assert str(PlanCache().root) == "/tmp/elsewhere"
