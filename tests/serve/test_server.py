"""End-to-end server behaviour over real sockets (loopback).

All in-process tests run the full asyncio stack — ``ServeApp`` bound
to an ephemeral port, the load generator's keep-alive client on the
other side — inside ``asyncio.run``.  One subprocess test exercises
the ``repro serve`` entry point's SIGTERM drain contract.
"""

import asyncio
import json
import os
import queue
import signal
import subprocess
import sys
import threading
from pathlib import Path

import repro
from repro.obs.metrics import METRICS
from repro.serve import ServeApp, decide_one
from repro.serve.loadgen import _Connection
from repro.serve.protocol import quantize_costs


def _app(store, **kwargs):
    kwargs.setdefault("reload_interval", 0.0)  # no catalog to poll
    return ServeApp(store, **kwargs)


def _run_with_server(store, scenario, **app_kwargs):
    """Start app on an ephemeral port, run the scenario coro, drain."""

    async def runner():
        app = _app(store, **app_kwargs)
        host, port = await app.start("127.0.0.1", 0)
        conn = _Connection(host, port)
        try:
            return await scenario(app, conn)
        finally:
            conn.close()
            await app.drain()

    return asyncio.run(runner())


def _probe(entry):
    return list(quantize_costs(entry.center))


def test_healthz_reports_store_and_drain_state(warm_store, q6_entry):
    async def scenario(app, conn):
        status, payload = await conn.get("/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["pid"] == os.getpid()
        assert payload["store"]["plans"]["Q6/split"] == q6_entry.plans
        return payload

    _run_with_server(warm_store, scenario)


def test_decide_over_http_matches_canonical_kernel(
    warm_store, q6_entry
):
    async def scenario(app, conn):
        body = {
            "query": "Q6",
            "scenario": "split",
            "cost_vector": _probe(q6_entry),
        }
        status, payload = await conn.post("/v1/decide", body)
        assert status == 200
        expected = decide_one(
            q6_entry, tuple(_probe(q6_entry))
        )
        # The HTTP payload is the kernel's output through one JSON
        # round-trip — bit-identical floats included.
        assert payload == json.loads(json.dumps(expected))

    _run_with_server(warm_store, scenario)


def test_http_error_paths(warm_store, q6_entry):
    async def scenario(app, conn):
        status, payload = await conn.post(
            "/v1/decide",
            {"query": "Q99", "cost_vector": [1.0]},
        )
        assert status == 400
        assert "unknown query" in payload["error"]

        status, payload = await conn.post(
            "/v1/decide",
            {"query": "Q6", "cost_vector": [1.0]},
        )
        assert status == 400
        assert (
            f"needs {q6_entry.dimension} component(s)"
            in payload["error"]
        )

        status, payload = await conn.post(
            "/v1/decide",
            {
                "query": "Q6",
                "scenario": "nope",
                "cost_vector": _probe(q6_entry),
            },
        )
        assert status == 400

        status, payload = await conn.get("/v1/decide")
        assert status == 405
        status, payload = await conn.get("/nowhere")
        assert status == 404
        status, payload = await conn.post("/healthz", {})
        assert status == 405

    _run_with_server(warm_store, scenario)


def test_malformed_json_is_a_400(warm_store):
    async def scenario(app, conn):
        await conn._ensure()
        raw = b"{not json"
        head = (
            "POST /v1/decide HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {len(raw)}\r\n\r\n"
        )
        conn.writer.write(head.encode() + raw)
        await conn.writer.drain()
        status, payload = await conn._read_response()
        assert status == 400
        assert "not JSON" in payload["error"]

    _run_with_server(warm_store, scenario)


def test_concurrent_duplicates_coalesce_to_one_computation(
    warm_store, q6_entry
):
    async def runner():
        app = _app(warm_store, window=60.0)
        await app.batcher.start()
        body = {
            "query": "Q6",
            "scenario": "split",
            "cost_vector": _probe(q6_entry),
        }
        tasks = [
            asyncio.ensure_future(app.decide(body)) for _ in range(4)
        ]
        await asyncio.sleep(0)  # let every submit register
        assert app.batcher.depth == 1
        assert METRICS.counter("serve.coalesced").value == 3
        app.batcher.flush_now()
        answers = await asyncio.gather(*tasks)
        assert answers == [answers[0]] * 4
        assert METRICS.counter("serve.dgemm_calls").value == 1
        await app.batcher.stop()

    asyncio.run(runner())


def test_draining_server_rejects_new_decides(warm_store, q6_entry):
    async def runner():
        app = _app(warm_store)
        host, port = await app.start("127.0.0.1", 0)
        conn = _Connection(host, port)
        body = {
            "query": "Q6",
            "cost_vector": _probe(q6_entry),
        }
        status, _ = await conn.post("/v1/decide", body)
        assert status == 200
        conn.close()
        await app.drain()
        assert app.draining
        # Routing while draining answers 503 (listener is closed, so
        # exercise the route table directly).
        status, payload = await app._route(
            "POST", "/v1/decide", json.dumps(body).encode()
        )
        assert status == 503
        assert payload["error"] == "draining"

    asyncio.run(runner())


def test_cli_serve_subprocess_sigterm_drains_to_exit_zero(tmp_path):
    src = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    lines: "queue.Queue[str]" = queue.Queue()

    def pump():
        for line in process.stderr:
            lines.put(line)

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    try:
        banner = lines.get(timeout=60)
        assert "serving on http://127.0.0.1:" in banner
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=30) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    thread.join(timeout=5)
    drained = [lines.get_nowait() for _ in range(lines.qsize())]
    assert any("draining" in line for line in drained)
