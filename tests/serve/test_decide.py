"""The decide kernel's bitwise-parity contract.

A served response must be a pure function of ``(query, scenario,
quantized C)`` — independent of which micro-batch it rode in — and
field-for-field identical to what offline ``repro explain`` computes
through :func:`repro.obs.decisions.explain_probe`.
"""

import numpy as np

from repro.obs.decisions import explain_probe
from repro.obs.metrics import METRICS
from repro.serve import decide_group, decide_one, verify_offline
from repro.serve.protocol import quantize_costs


def _probes(entry, count, seed=0):
    rng = np.random.default_rng(seed)
    center = np.asarray(entry.center)
    factors = rng.uniform(0.2, 5.0, size=(count, entry.dimension))
    return [
        quantize_costs(center * row) for row in factors
    ]


def test_decide_one_matches_explain_probe_bitwise(q6_entry):
    (probe,) = _probes(q6_entry, 1)
    response = decide_one(q6_entry, probe)
    info = explain_probe(
        q6_entry.matrix, np.asarray(probe, dtype=float)
    )
    assert response["winner"] == info["winner"]
    assert response["winner_total"] == info["winner_total"]
    assert response["runner_up"] == info["runner_up"]
    assert response["runner_up_total"] == info["runner_up_total"]
    assert response["margin"] == info["margin"]
    assert response["plane_distance"] == info["plane_distance"]
    assert response["nearest_rival"] == info["nearest_rival"]
    assert response["candidates"] == q6_entry.plans
    assert (
        response["winner_signature"]
        == q6_entry.signatures[info["winner"]]
    )


def test_decide_group_is_batch_shape_independent(q6_entry):
    """The same probe answered alone and inside a batch of 40 must be
    byte-identical — the whole point of the canonical second pass."""
    probes = _probes(q6_entry, 40, seed=1)
    batched = decide_group(q6_entry, probes)
    for position in (0, 17, 39):
        solo = decide_group(q6_entry, [probes[position]])[0]
        assert solo == batched[position]


def test_decide_group_matches_decide_one_rows(q6_entry):
    probes = _probes(q6_entry, 8, seed=2)
    group = decide_group(q6_entry, probes)
    singles = [decide_one(q6_entry, probe) for probe in probes]
    assert group == singles


def test_decide_group_counts_one_dgemm_per_call(q6_entry):
    probes = _probes(q6_entry, 5, seed=3)
    before = METRICS.counter("serve.dgemm_calls").value
    decide_group(q6_entry, probes)
    after = METRICS.counter("serve.dgemm_calls").value
    assert after == before + 1
    assert METRICS.counter("serve.probes").value >= 5


def test_verify_offline_replays_to_equal_responses(q6_entry):
    probes = _probes(q6_entry, 6, seed=4)
    requests = [
        {"query": "Q6", "scenario": "split", "cost": probe}
        for probe in probes
    ]
    online = decide_group(q6_entry, probes)
    offline = verify_offline(
        {("Q6", "split"): q6_entry}, requests
    )
    assert offline == online
