import pytest

from repro.obs.metrics import METRICS
from repro.serve import CandidateStore


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep serve artefacts (cache, bench, history) out of the repo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "plan-cache"))
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "history"))
    monkeypatch.chdir(tmp_path)


@pytest.fixture(autouse=True)
def _reset_metrics():
    """Serve counters are process-global; isolate them per test."""
    METRICS.reset()
    yield
    METRICS.reset()


@pytest.fixture(scope="session")
def warm_store():
    """One session-wide in-memory store (entry builds are the slow
    part of these tests; the decide kernels under test are pure
    functions of the entry, so sharing it is safe)."""
    return CandidateStore(scale=100.0, delta=100.0, cache=None)


@pytest.fixture(scope="session")
def q6_entry(warm_store):
    return warm_store.entry("Q6", "split")
