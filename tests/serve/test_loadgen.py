"""Load generator: determinism, BENCH record shape, digest parity."""

import json

import numpy as np

from repro.obs.bench import validate_bench_record
from repro.serve import (
    CandidateStore,
    ServeApp,
    build_requests,
    decisions_digest,
    run_loadgen,
)
from repro.serve.decide import verify_offline
from repro.serve.loadgen import LoadgenResult, bench_record_from


def test_build_requests_is_seed_deterministic(warm_store):
    first = build_requests(
        warm_store, ["Q6"], "split", count=12, seed=7, quant_digits=9
    )
    second = build_requests(
        warm_store, ["Q6"], "split", count=12, seed=7, quant_digits=9
    )
    assert first == second
    other = build_requests(
        warm_store, ["Q6"], "split", count=12, seed=8, quant_digits=9
    )
    assert first != other
    assert len(first) == 12
    assert all(request["query"] == "Q6" for request in first)


def test_build_requests_round_robins_queries(warm_store):
    requests = build_requests(
        warm_store,
        ["Q6", "Q14"],
        "split",
        count=6,
        seed=1,
        quant_digits=9,
    )
    assert [request["query"] for request in requests] == [
        "Q6", "Q14", "Q6", "Q14", "Q6", "Q14",
    ]


def _result(count=20, metrics=None):
    rng = np.random.default_rng(0)
    responses = [
        {
            "query": "Q6",
            "scenario": "split",
            "cost": [1.0],
            "candidates": 2,
            "winner": 0,
            "winner_total": float(index),
            "runner_up": 1,
            "runner_up_total": float(index) * 2,
            "margin": 0.3,
            "plane_distance": 0.1,
            "nearest_rival": 1,
        }
        for index in range(count)
    ]
    return LoadgenResult(
        requests=[{}] * count,
        responses=responses,
        latencies=rng.uniform(1e-3, 5e-3, count),
        wall_seconds=0.5,
        target_qps=40.0,
        errors=0,
        server_metrics=metrics,
    )


def test_bench_record_validates_and_carries_the_gate_series():
    result = _result(
        metrics={
            "counters": {"serve.requests": 20, "serve.coalesced": 0},
            "histograms": {"serve.batch_size": {"count": 20}},
        }
    )
    record = bench_record_from(result, catalog_sha="abc123")
    assert validate_bench_record(record) == []
    assert record["benchmark"] == "serve"
    assert set(record["results"]) == {"decide_latency", "decide_p99"}
    latency = record["results"]["decide_latency"]
    assert latency["rounds"] == 20
    assert latency["min_seconds"] <= latency["median_seconds"]
    assert latency["median_seconds"] <= latency["max_seconds"]
    pinned = record["results"]["decide_p99"]
    assert pinned["median_seconds"] == result.percentile(99)
    assert pinned["iqr_seconds"] == 0.0
    extras = record["extras"]
    assert extras["decisions_digest"] == result.digest
    assert extras["achieved_qps"] == result.achieved_qps
    assert extras["server_requests"] == 20
    assert extras["batch_size"] == {"count": 20}


def test_self_serve_loadgen_end_to_end(tmp_path, capsys):
    store = CandidateStore(cache=None)
    app = ServeApp(store, reload_interval=0.0)
    bench_out = tmp_path / "BENCH_serve.json"
    code = run_loadgen(
        store,
        queries=["Q6"],
        scenario_key="split",
        qps=400.0,
        count=16,
        seed=3,
        connections=4,
        quant_digits=9,
        warmup=1,
        host=None,
        port=None,
        self_serve_app=app,
        bench_out=str(bench_out),
        verify=True,
        p99_gate=5.0,
        append_to_history=False,
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "digest parity OK" in out
    assert "p99 gate: OK" in out
    record = json.loads(bench_out.read_text())
    assert validate_bench_record(record) == []
    assert record["extras"]["requests"] == 16
    assert record["extras"]["errors"] == 0

    # The digest in the record is reproducible offline from the same
    # seed — the CI gate in miniature.
    requests = build_requests(
        store, ["Q6"], "split", count=16, seed=3, quant_digits=9
    )
    offline = verify_offline(
        {("Q6", "split"): store.entry("Q6", "split")}, requests
    )
    assert (
        decisions_digest(offline)
        == record["extras"]["decisions_digest"]
    )


def test_loadgen_p99_gate_failure_sets_exit_code(tmp_path):
    store = CandidateStore(cache=None)
    app = ServeApp(store, reload_interval=0.0)
    code = run_loadgen(
        store,
        queries=["Q6"],
        scenario_key="split",
        qps=400.0,
        count=4,
        seed=0,
        connections=2,
        quant_digits=9,
        warmup=0,
        host=None,
        port=None,
        self_serve_app=app,
        bench_out=None,
        verify=False,
        p99_gate=1e-12,  # unachievable: forces the gate to trip
        append_to_history=False,
    )
    assert code == 1
