"""Warm-store behaviour: caching, sharing, catalog hot-reload."""

import pickle

import pytest

from repro.experiments.engine import RunContext
from repro.obs.metrics import METRICS
from repro.optimizer.plancache import PlanCache
from repro.serve import CandidateStore
from repro.serve.protocol import RequestError


def test_entry_is_built_once_and_memoized(warm_store):
    before = METRICS.counter("serve.store_builds").value
    first = warm_store.entry("Q6", "split")
    second = warm_store.entry("Q6", "split")
    assert first is second
    # The session fixture may have built it already; at most one build.
    assert (
        METRICS.counter("serve.store_builds").value - before <= 1
    )
    assert first.plans >= 1
    assert first.dimension == len(first.names)
    assert len(first.center) == first.dimension


def test_entry_resolves_scenario_aliases(warm_store):
    canonical = warm_store.entry("Q6", "split")
    aliased = warm_store.entry("Q6", "fig6")
    assert aliased is canonical
    assert canonical.scenario == "split"


def test_unknown_query_and_scenario_are_request_errors(warm_store):
    with pytest.raises(RequestError, match="unknown query"):
        warm_store.entry("Q99", "split")
    with pytest.raises(RequestError, match="scenario"):
        warm_store.entry("Q6", "not-a-scenario")


def test_two_stores_share_one_plan_cache(tmp_path):
    cache = PlanCache(tmp_path / "shared-cache")
    first = CandidateStore(cache=cache)
    first.entry("Q6", "split")
    misses = METRICS.counter("plancache.misses").value
    hits = METRICS.counter("plancache.hits").value
    second = CandidateStore(cache=cache)
    entry = second.entry("Q6", "split")
    assert METRICS.counter("plancache.hits").value == hits + 1
    assert METRICS.counter("plancache.misses").value == misses
    assert entry.plans == first.entry("Q6", "split").plans


def test_warm_builds_each_query(warm_store):
    assert warm_store.warm(["Q6"], "split") == 1
    stats = warm_store.stats()
    assert stats["entries"] >= 1
    assert stats["plans"]["Q6/split"] >= 1
    assert stats["catalog_digest"]
    assert stats["cache_dir"] is None


def test_catalog_hot_reload_swaps_and_invalidates(tmp_path):
    catalog_file = tmp_path / "catalog.pkl"
    catalog_file.write_bytes(
        pickle.dumps(RunContext(scale=100.0).catalog)
    )
    store = CandidateStore(catalog_path=catalog_file)
    store.entry("Q6", "split")
    original = store.catalog_sha
    assert store.maybe_reload() is False  # digest unchanged
    assert store.stats()["entries"] == 1

    catalog_file.write_bytes(
        pickle.dumps(RunContext(scale=10.0).catalog)
    )
    before = METRICS.counter("serve.catalog_reloads").value
    assert store.maybe_reload() is True
    assert store.catalog_sha != original
    assert store.stats()["entries"] == 0  # warm entries dropped
    assert (
        METRICS.counter("serve.catalog_reloads").value == before + 1
    )
    rebuilt = store.entry("Q6", "split")
    assert rebuilt.plans >= 1


def test_catalog_reload_survives_unreadable_file(tmp_path):
    catalog_file = tmp_path / "catalog.pkl"
    catalog_file.write_bytes(
        pickle.dumps(RunContext(scale=100.0).catalog)
    )
    store = CandidateStore(catalog_path=catalog_file)
    digest = store.catalog_sha
    catalog_file.write_bytes(b"not a pickle at all")
    assert store.maybe_reload() is False  # skipped, not fatal
    assert store.catalog_sha == digest
