"""Wire-protocol rules: quantization, validation, digests."""

import json

import pytest

from repro.serve import (
    decisions_digest,
    parse_decide_request,
    quantize_costs,
    request_key,
    response_core,
)
from repro.serve.protocol import CORE_FIELDS, RequestError


def test_quantize_is_idempotent():
    values = (1.23456789123456, 9876.54321987, 0.000123456789123)
    once = quantize_costs(values)
    assert quantize_costs(once) == once
    assert all(v > 0 for v in once)


def test_quantize_survives_json_round_trip():
    values = quantize_costs((3.14159265358979, 2.71828182845905))
    again = tuple(json.loads(json.dumps(list(values))))
    assert again == values


def test_quantize_digits_bound():
    assert quantize_costs((1.23456,), digits=3) == (1.23,)
    with pytest.raises(ValueError):
        quantize_costs((1.0,), digits=0)


def test_parse_fills_default_scenario_and_quantizes():
    request = parse_decide_request(
        {"query": "Q6", "cost_vector": [1.23456789123456, 2.0]}
    )
    assert request["query"] == "Q6"
    assert request["scenario"] == "split"
    assert request["cost"] == quantize_costs((1.23456789123456, 2.0))


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ([1, 2], "JSON object"),
        ({"cost_vector": [1.0]}, "'query'"),
        ({"query": "", "cost_vector": [1.0]}, "'query'"),
        ({"query": "Q6"}, "'cost_vector'"),
        ({"query": "Q6", "cost_vector": []}, "'cost_vector'"),
        ({"query": "Q6", "cost_vector": ["x"]}, "must be a number"),
        ({"query": "Q6", "cost_vector": [True]}, "must be a number"),
        ({"query": "Q6", "cost_vector": [0.0]}, "finite and > 0"),
        ({"query": "Q6", "cost_vector": [-1.0]}, "finite and > 0"),
        (
            {"query": "Q6", "cost_vector": [1.0], "extra": 1},
            "unknown request field",
        ),
        (
            {"query": "Q6", "scenario": "", "cost_vector": [1.0]},
            "'scenario'",
        ),
    ],
)
def test_parse_rejections(payload, fragment):
    with pytest.raises(RequestError) as caught:
        parse_decide_request(payload)
    assert fragment in str(caught.value)


def test_request_key_equates_quantized_duplicates():
    near_a = parse_decide_request(
        {"query": "Q6", "cost_vector": [1.0000000001234]}
    )
    near_b = parse_decide_request(
        {"query": "Q6", "cost_vector": [1.0000000001999]}
    )
    assert request_key(near_a) == request_key(near_b)
    far = parse_decide_request({"query": "Q6", "cost_vector": [1.1]})
    assert request_key(near_a) != request_key(far)


def _response(total: float) -> dict:
    return {
        "query": "Q6",
        "scenario": "split",
        "cost": [1.0, 2.0],
        "candidates": 2,
        "winner": 0,
        "winner_total": total,
        "runner_up": 1,
        "runner_up_total": total * 2,
        "margin": 0.5,
        "plane_distance": 0.1,
        "nearest_rival": 1,
        "winner_signature": "IXSCAN(L)",  # outside the core
        "serve_schema_version": 1,
    }


def test_response_core_projects_exactly_core_fields():
    core = response_core(_response(10.0))
    assert tuple(sorted(core)) == tuple(sorted(CORE_FIELDS))


def test_decisions_digest_is_order_and_value_sensitive():
    a, b = _response(10.0), _response(11.0)
    assert decisions_digest([a, b]) == decisions_digest([a, b])
    assert decisions_digest([a, b]) != decisions_digest([b, a])
    assert decisions_digest([a]) != decisions_digest([b])


def test_decisions_digest_ignores_non_core_fields():
    a = _response(10.0)
    b = dict(_response(10.0), winner_signature="TBSCAN(L)")
    assert decisions_digest([a]) == decisions_digest([b])
