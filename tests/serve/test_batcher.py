"""Batching-window edge cases for the micro-batch queue.

The four contractual behaviours: an empty flush tick is counted and
harmless; a single in-flight request resolves on the next tick;
coalesced duplicates are computed once and replied N times; and a
tick larger than ``max_batch`` splits into multiple compute calls.
"""

import asyncio

import pytest

from repro.obs.metrics import METRICS
from repro.serve import MicroBatcher
from repro.serve.protocol import parse_decide_request


def _request(value: float, query: str = "Q6") -> dict:
    return parse_decide_request(
        {"query": query, "cost_vector": [value, 1.0]}
    )


class _Recorder:
    """A compute stub recording every batch it was handed."""

    def __init__(self, fail: bool = False) -> None:
        self.batches: list[list] = []
        self.fail = fail

    def __call__(self, requests: list) -> list:
        self.batches.append(list(requests))
        if self.fail:
            raise RuntimeError("kernel exploded")
        return [
            {"echo": tuple(request["cost"])} for request in requests
        ]


def test_empty_flush_tick_counts_and_answers_nothing():
    compute = _Recorder()
    batcher = MicroBatcher(compute, window=0.001)
    before = METRICS.counter("serve.empty_ticks").value
    assert batcher.flush_now() == 0
    assert batcher.flush_now() == 0
    assert METRICS.counter("serve.empty_ticks").value == before + 2
    assert compute.batches == []


def test_single_in_flight_request_resolves_on_flush():
    async def scenario():
        compute = _Recorder()
        batcher = MicroBatcher(compute, window=60.0)
        future = batcher.submit(_request(2.0))
        assert batcher.depth == 1
        assert not future.done()
        assert batcher.flush_now() == 1
        assert batcher.depth == 0
        assert await future == {"echo": _request(2.0)["cost"]}
        assert [len(batch) for batch in compute.batches] == [1]
        state = METRICS.histogram("serve.batch_size").state()
        assert state["count"] == 1 and state["max"] == 1.0

    asyncio.run(scenario())


def test_coalesced_duplicates_computed_once_replied_n_times():
    async def scenario():
        compute = _Recorder()
        batcher = MicroBatcher(compute, window=60.0)
        futures = [batcher.submit(_request(3.0)) for _ in range(5)]
        lone = batcher.submit(_request(4.0))
        assert batcher.depth == 2  # five duplicates share one key
        assert METRICS.counter("serve.coalesced").value == 4
        batcher.flush_now()
        answers = [await future for future in futures]
        assert answers == [answers[0]] * 5
        assert await lone == {"echo": _request(4.0)["cost"]}
        # One compute call, two unique probes.
        assert [len(batch) for batch in compute.batches] == [2]
        assert METRICS.counter("serve.requests").value == 6

    asyncio.run(scenario())


def test_oversized_batch_splits_across_two_compute_calls():
    async def scenario():
        compute = _Recorder()
        batcher = MicroBatcher(compute, window=60.0, max_batch=3)
        futures = [
            batcher.submit(_request(1.0 + index))
            for index in range(5)
        ]
        before = METRICS.counter("serve.batch_splits").value
        batcher.flush_now()
        assert METRICS.counter("serve.batch_splits").value == before + 1
        assert [len(batch) for batch in compute.batches] == [3, 2]
        answers = [await future for future in futures]
        assert answers == [
            {"echo": _request(1.0 + index)["cost"]}
            for index in range(5)
        ]

    asyncio.run(scenario())


def test_groups_split_by_query_within_one_tick():
    async def scenario():
        compute = _Recorder()
        batcher = MicroBatcher(compute, window=60.0)
        first = batcher.submit(_request(1.0, query="Q6"))
        second = batcher.submit(_request(1.0, query="Q14"))
        batcher.flush_now()
        await asyncio.gather(first, second)
        assert sorted(len(batch) for batch in compute.batches) == [1, 1]
        queries = sorted(
            batch[0]["query"] for batch in compute.batches
        )
        assert queries == ["Q14", "Q6"]

    asyncio.run(scenario())


def test_compute_failure_rejects_every_waiter_in_the_chunk():
    async def scenario():
        compute = _Recorder(fail=True)
        batcher = MicroBatcher(compute, window=60.0)
        futures = [batcher.submit(_request(5.0)) for _ in range(3)]
        batcher.flush_now()
        for future in futures:
            with pytest.raises(RuntimeError, match="kernel exploded"):
                await future

    asyncio.run(scenario())


def test_stop_drains_pending_requests():
    async def scenario():
        compute = _Recorder()
        batcher = MicroBatcher(compute, window=60.0)
        await batcher.start()
        future = batcher.submit(_request(6.0))
        await batcher.stop()
        assert future.done()
        assert await future == {"echo": _request(6.0)["cost"]}

    asyncio.run(scenario())


def test_constructor_validation():
    with pytest.raises(ValueError):
        MicroBatcher(lambda batch: [], window=0.0)
    with pytest.raises(ValueError):
        MicroBatcher(lambda batch: [], max_batch=0)
