"""Tests for the SQL lexer."""

import pytest

from repro.sql.lexer import SqlLexError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_keywords_case_insensitive():
    tokens = tokenize("select FROM WhErE")
    assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
    assert all(t.kind == "keyword" for t in tokens[:-1])


def test_identifiers_uppercased():
    assert values("lineitem L_shipdate") == ["LINEITEM", "L_SHIPDATE"]


def test_numbers():
    tokens = tokenize("42 3.14 .5")
    assert [t.value for t in tokens[:-1]] == ["42", "3.14", ".5"]
    assert all(t.kind == "number" for t in tokens[:-1])


def test_qualified_name_dots_are_punct():
    tokens = tokenize("L.L_SHIPDATE")
    assert [t.kind for t in tokens[:-1]] == ["ident", "punct", "ident"]


def test_strings_with_escapes():
    tokens = tokenize("'BRAND#12' 'it''s'")
    assert tokens[0].value == "BRAND#12"
    assert tokens[1].value == "it's"


def test_unterminated_string_raises():
    with pytest.raises(SqlLexError, match="unterminated"):
        tokenize("'oops")


def test_operators_longest_match():
    tokens = tokenize("<= >= <> != = < >")
    assert [t.value for t in tokens[:-1]] == [
        "<=", ">=", "<>", "!=", "=", "<", ">"
    ]
    assert all(t.kind == "op" for t in tokens[:-1])


def test_punctuation_and_star():
    assert values("( ) , . *") == ["(", ")", ",", ".", "*"]


def test_unexpected_character():
    with pytest.raises(SqlLexError, match="unexpected character"):
        tokenize("SELECT ; FROM")


def test_eof_token_always_present():
    assert tokenize("")[-1].kind == "eof"
    assert kinds("SELECT")[-1] == "eof"


def test_positions_recorded():
    tokens = tokenize("SELECT X")
    assert tokens[0].position == 0
    assert tokens[1].position == 7
