"""Tests for the SQL parser."""

import pytest

from repro.sql.parser import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    Like,
    SqlParseError,
    parse_sql,
)


def test_minimal_select_star():
    statement = parse_sql("SELECT * FROM LINEITEM")
    assert statement.select == ["*"]
    assert statement.tables[0].table == "LINEITEM"
    assert statement.tables[0].alias == "LINEITEM"
    assert statement.predicates == []


def test_aliases_with_and_without_as():
    statement = parse_sql("SELECT * FROM LINEITEM AS L, ORDERS O")
    assert statement.tables[0].alias == "L"
    assert statement.tables[1].alias == "O"


def test_join_and_local_predicates():
    statement = parse_sql(
        "SELECT L.L_ORDERKEY FROM LINEITEM L, ORDERS O "
        "WHERE L.L_ORDERKEY = O.O_ORDERKEY AND L.L_QUANTITY < 24"
    )
    join, local = statement.predicates
    assert isinstance(join, Comparison) and join.is_join
    assert join.right == ColumnRef("O", "O_ORDERKEY")
    assert isinstance(local, Comparison) and not local.is_join
    assert local.right == 24.0


def test_between_in_like():
    statement = parse_sql(
        "SELECT * FROM PART P WHERE P.P_SIZE BETWEEN 1 AND 15 "
        "AND P.P_BRAND IN ('B1', 'B2') AND P.P_NAME LIKE 'forest%'"
    )
    between, inlist, like = statement.predicates
    assert isinstance(between, Between)
    assert (between.low, between.high) == (1.0, 15.0)
    assert isinstance(inlist, InList)
    assert inlist.values == ("B1", "B2")
    assert isinstance(like, Like)
    assert like.is_prefix


def test_negated_forms():
    statement = parse_sql(
        "SELECT * FROM PART P WHERE P.P_TYPE NOT LIKE '%POLISHED%' "
        "AND P.P_SIZE NOT IN (1, 2) AND P.P_SIZE NOT BETWEEN 3 AND 4"
    )
    like, inlist, between = statement.predicates
    assert like.negated and not like.is_prefix
    assert inlist.negated
    assert between.negated


def test_group_and_order_by():
    statement = parse_sql(
        "SELECT L_RETURNFLAG, SUM(L_QUANTITY) FROM LINEITEM "
        "GROUP BY L_RETURNFLAG ORDER BY L_RETURNFLAG DESC"
    )
    assert statement.group_by == [ColumnRef(None, "L_RETURNFLAG")]
    assert statement.order_by == [ColumnRef(None, "L_RETURNFLAG")]
    assert "SUM(...)" in statement.select


def test_aggregate_with_star():
    statement = parse_sql("SELECT COUNT(*) FROM ORDERS")
    assert statement.select == ["COUNT(...)"]


def test_parse_errors():
    with pytest.raises(SqlParseError, match="expected SELECT"):
        parse_sql("UPDATE T")
    with pytest.raises(SqlParseError, match="expected FROM"):
        parse_sql("SELECT *")
    with pytest.raises(SqlParseError, match="literal"):
        parse_sql("SELECT * FROM T WHERE A = (")
    with pytest.raises(SqlParseError, match="NOT is only supported"):
        parse_sql("SELECT * FROM T WHERE A NOT = 4")
    with pytest.raises(SqlParseError):
        parse_sql("SELECT * FROM T WHERE")
    with pytest.raises(SqlParseError):  # trailing garbage
        parse_sql("SELECT * FROM T extra stuff ,")


def test_string_comparison_literal():
    statement = parse_sql(
        "SELECT * FROM REGION WHERE R_NAME = 'EUROPE'"
    )
    predicate = statement.predicates[0]
    assert predicate.right == "EUROPE"


def test_join_on_syntax():
    statement = parse_sql(
        "SELECT * FROM ORDERS O JOIN LINEITEM L "
        "ON O.O_ORDERKEY = L.L_ORDERKEY AND L.L_QUANTITY < 5 "
        "WHERE O.O_ORDERDATE < '1995-01-01'"
    )
    assert [t.alias for t in statement.tables] == ["O", "L"]
    assert len(statement.predicates) == 3
    join = statement.predicates[0]
    assert isinstance(join, Comparison) and join.is_join


def test_inner_join_keyword():
    statement = parse_sql(
        "SELECT * FROM ORDERS O INNER JOIN LINEITEM L "
        "ON O.O_ORDERKEY = L.L_ORDERKEY"
    )
    assert len(statement.tables) == 2
    assert len(statement.predicates) == 1


def test_chained_joins():
    statement = parse_sql(
        "SELECT * FROM CUSTOMER C "
        "JOIN ORDERS O ON C.C_CUSTKEY = O.O_CUSTKEY "
        "JOIN LINEITEM L ON O.O_ORDERKEY = L.L_ORDERKEY"
    )
    assert [t.alias for t in statement.tables] == ["C", "O", "L"]
    assert len(statement.predicates) == 2


def test_join_requires_on():
    with pytest.raises(SqlParseError, match="expected ON"):
        parse_sql("SELECT * FROM A JOIN B")
