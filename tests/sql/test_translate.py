"""Tests for SQL -> QuerySpec translation."""

import pytest

from repro.catalog import build_tpch_catalog
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.optimizer.dp import optimize_scalar
from repro.sql import SqlTranslationError, sql_to_query
from repro.storage import StorageLayout


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(1)


def test_join_edges_extracted(catalog):
    query = sql_to_query(
        "SELECT * FROM ORDERS O, LINEITEM L "
        "WHERE O.O_ORDERKEY = L.L_ORDERKEY",
        catalog,
    )
    assert len(query.joins) == 1
    assert query.joins[0].aliases() == frozenset({"O", "L"})
    assert query.is_connected()


def test_equality_selectivity_from_distincts(catalog):
    query = sql_to_query(
        "SELECT * FROM CUSTOMER WHERE C_MKTSEGMENT = 'BUILDING'",
        catalog,
    )
    predicate = query.predicates[0]
    assert predicate.selectivity == pytest.approx(1 / 5)
    assert predicate.column == "C_MKTSEGMENT"  # sargable


def test_inequality_selectivity_complement(catalog):
    query = sql_to_query(
        "SELECT * FROM PART WHERE P_BRAND <> 'Brand#45'", catalog
    )
    predicate = query.predicates[0]
    assert predicate.selectivity == pytest.approx(24 / 25)
    assert predicate.column is None  # residual


def test_range_and_between_defaults(catalog):
    query = sql_to_query(
        "SELECT * FROM LINEITEM WHERE L_QUANTITY < 24 "
        "AND L_DISCOUNT BETWEEN 0.05 AND 0.07",
        catalog,
    )
    range_pred, between_pred = query.predicates
    assert range_pred.selectivity == pytest.approx(1 / 3)
    assert range_pred.column == "L_QUANTITY"
    assert between_pred.selectivity == pytest.approx(1 / 4)


def test_in_list_scales_with_size(catalog):
    query = sql_to_query(
        "SELECT * FROM LINEITEM WHERE L_SHIPMODE IN ('MAIL', 'SHIP')",
        catalog,
    )
    assert query.predicates[0].selectivity == pytest.approx(2 / 7)


def test_like_prefix_sargable_suffix_not(catalog):
    prefix = sql_to_query(
        "SELECT * FROM PART WHERE P_NAME LIKE 'forest%'", catalog
    )
    assert prefix.predicates[0].column == "P_NAME"
    infix = sql_to_query(
        "SELECT * FROM PART WHERE P_NAME LIKE '%green%'", catalog
    )
    assert infix.predicates[0].column is None


def test_unqualified_columns_resolved(catalog):
    query = sql_to_query(
        "SELECT * FROM ORDERS, LINEITEM "
        "WHERE O_ORDERKEY = L_ORDERKEY AND O_ORDERDATE < '1995-01-01'",
        catalog,
    )
    assert len(query.joins) == 1
    assert query.predicates[0].alias == "ORDERS"


def test_group_and_order_clauses(catalog):
    query = sql_to_query(
        "SELECT L_RETURNFLAG, SUM(L_QUANTITY) FROM LINEITEM "
        "GROUP BY L_RETURNFLAG ORDER BY L_RETURNFLAG",
        catalog,
    )
    assert query.group_by == (("LINEITEM", "L_RETURNFLAG"),)
    assert query.order_by == (("LINEITEM", "L_RETURNFLAG"),)


def test_translation_errors(catalog):
    with pytest.raises(SqlTranslationError, match="unknown table"):
        sql_to_query("SELECT * FROM NOPE", catalog)
    with pytest.raises(SqlTranslationError, match="unknown column"):
        sql_to_query("SELECT * FROM PART WHERE BOGUS = 1", catalog)
    with pytest.raises(SqlTranslationError, match="ambiguous"):
        # L_ORDERKEY exists in both LINEITEM aliases.
        sql_to_query(
            "SELECT * FROM LINEITEM A, LINEITEM B WHERE L_ORDERKEY = 1",
            catalog,
        )
    with pytest.raises(SqlTranslationError, match="duplicate alias"):
        sql_to_query("SELECT * FROM PART P, ORDERS P", catalog)
    with pytest.raises(SqlTranslationError, match="unknown alias"):
        sql_to_query("SELECT * FROM PART WHERE Z.P_SIZE = 1", catalog)


def test_translated_query_is_optimizable(catalog):
    """SQL front end to plan, end to end."""
    query = sql_to_query(
        "SELECT O_ORDERPRIORITY, COUNT(*) FROM ORDERS O, LINEITEM L "
        "WHERE O.O_ORDERKEY = L.L_ORDERKEY "
        "AND O.O_ORDERDATE < '1993-10-01' "
        "AND L.L_SHIPDATE > '1993-07-01' "
        "GROUP BY O.O_ORDERPRIORITY ORDER BY O.O_ORDERPRIORITY",
        catalog,
        name="sql-q4ish",
    )
    layout = StorageLayout.shared_device(query.table_names())
    plan = optimize_scalar(
        query, catalog, DEFAULT_PARAMETERS, layout, layout.center_costs()
    )
    assert "GRPBY(" in plan.signature


def test_same_alias_column_comparison_is_residual(catalog):
    query = sql_to_query(
        "SELECT * FROM LINEITEM L WHERE L.L_COMMITDATE < L.L_RECEIPTDATE",
        catalog,
    )
    assert query.joins == ()
    assert query.predicates[0].column is None
    assert query.predicates[0].selectivity == pytest.approx(1 / 3)


def test_join_on_translates_to_edges(catalog):
    query = sql_to_query(
        "SELECT * FROM CUSTOMER C "
        "JOIN ORDERS O ON C.C_CUSTKEY = O.O_CUSTKEY "
        "JOIN LINEITEM L ON O.O_ORDERKEY = L.L_ORDERKEY "
        "WHERE O.O_ORDERDATE < '1995-01-01'",
        catalog,
    )
    assert len(query.joins) == 2
    assert query.is_connected()
    assert len(query.predicates) == 1
