"""Decision-log bit-parity across execution modes.

The provenance contract: the sampled record set and the fragility
aggregates are keyed by ``(task, context, sequence)`` — never by
values or timing — so a serial run, a ``--jobs 2`` run, and a
checkpoint→resume run of the same experiment export byte-identical
decision state."""

import pytest

from repro.catalog import build_tpch_catalog
from repro.experiments import RunContext, RunJournal, run_experiment
from repro.experiments.expected import ExpectedParams
from repro.obs import DECISIONS, METRICS, TRACER
from repro.workloads import build_tpch_queries


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def queries(catalog):
    full = build_tpch_queries(catalog)
    return {k: full[k] for k in ("Q1", "Q6", "Q14")}


@pytest.fixture(autouse=True)
def _fresh_obs():
    def clean():
        METRICS.reset()
        TRACER.reset()
        TRACER.enabled = False
        DECISIONS.disable()
        DECISIONS.reset()

    clean()
    yield
    clean()


def _run(catalog, queries, jobs=1, **ctx_kwargs):
    DECISIONS.reset()
    DECISIONS.configure(sample_k=16)
    DECISIONS.enable()
    ctx = RunContext(
        scale=100.0, catalog=catalog, queries=queries, jobs=jobs,
        **ctx_kwargs,
    )
    rows = run_experiment(
        "expected",
        ExpectedParams(scenario_key="shared", delta=10.0, n_samples=100),
        ctx,
    )
    return rows, DECISIONS.export_state(), ctx


def test_jobs2_decision_state_matches_serial(catalog, queries):
    serial_rows, serial_state, _ = _run(catalog, queries, jobs=1)
    parallel_rows, parallel_state, _ = _run(catalog, queries, jobs=2)
    assert serial_rows == parallel_rows
    assert parallel_state == serial_state
    # The instrumentation actually fired, per-query contexts included.
    assert set(serial_state["contexts"]) == {
        "expected:Q1", "expected:Q6", "expected:Q14",
    }
    total = sum(
        ctx["probes"] for ctx in serial_state["contexts"].values()
    )
    assert total == 300  # 3 queries x 100 drift samples
    assert len(serial_state["records"]) == 16
    # Reference accounting flows through the engine path.
    assert all(
        ctx["with_reference"] == ctx["probes"]
        for ctx in serial_state["contexts"].values()
    )


def test_resume_decision_state_matches_uninterrupted(
    catalog, queries, tmp_path
):
    __, full_state, first = _run(
        catalog, queries, checkpoint=True, journal_root=tmp_path
    )
    journal = RunJournal(first.run_id, root=tmp_path)
    assert journal.completed() == {0, 1, 2}
    # The per-task decision deltas rode along with the journal.
    for index in (0, 1, 2):
        assert journal.load_decisions(index) is not None
    # Simulate a kill after task 0: tasks 1..2 must re-execute while
    # task 0 is served from the journal, decisions delta included.
    journal.task_path(1).unlink()
    journal.task_path(2).unlink()
    __, resumed_state, second = _run(
        catalog, queries, resume="auto", journal_root=tmp_path
    )
    assert second.task_stats["resumed"] == 1
    assert resumed_state == full_state


def test_disabled_run_journals_no_decisions(catalog, queries, tmp_path):
    ctx = RunContext(
        scale=100.0, catalog=catalog, queries=queries,
        checkpoint=True, journal_root=tmp_path,
    )
    run_experiment(
        "expected",
        ExpectedParams(scenario_key="shared", delta=10.0, n_samples=50),
        ctx,
    )
    journal = RunJournal(ctx.run_id, root=tmp_path)
    for index in journal.completed():
        assert not journal.decisions_path(index).exists()
