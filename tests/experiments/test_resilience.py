"""The resilience layer: retries, timeouts, kills, checkpoint/resume.

The promises under test: a fault-injected run with retries produces
bit-identical results to a clean run (fault decisions and backoff are
pure functions of the seed); hung tasks are interrupted; a worker
killed mid-task respawns the pool instead of deadlocking; ``skip``
finishes with holes recorded in the report; and a run SIGKILLed
mid-sweep resumes from its journal re-executing only the unfinished
tasks, with digests identical to an uninterrupted run.
"""

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.experiments import (
    ResumeMismatchError,
    RunContext,
    RunJournal,
    TaskRunReport,
    parallel_map,
    run_experiment,
    run_key,
)
from repro.experiments.engine import (
    _REGISTRY,
    Experiment,
    register_experiment,
)
from repro.obs.faults import (
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    TaskTimeout,
)
from repro.obs.metrics import METRICS

SRC = Path(__file__).resolve().parents[2] / "src"

#: Tiny catalog so every worker init is cheap.
SCALE = 1.0

#: At seed 5, tasks 1/2 of a kill:0.2,raise:0.1 plan are killed on
#: their first attempt (see test_faults.py for the determinism proof).
KILL_SEED = 5


def _square(item):
    return item * item


def _flaky(item):
    """Fails (marker file counts attempts) until the third attempt."""
    root, index = item
    marker = Path(root) / f"attempts-{index}"
    count = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(count + 1))
    if count < 2:
        raise RuntimeError(f"flaky task {index}, attempt {count}")
    return index


def _sleepy(item):
    index, nap = item
    time.sleep(nap)
    return index


@dataclass(frozen=True)
class ToyParams:
    n: int = 4
    factor: int = 3


class ToySpec(Experiment):
    name = "resilience-toy"
    help = "i*factor for i < n"
    params_type = ToyParams
    uses_scenario = False

    def plan_tasks(self, ctx, params):
        return [(i, params.factor) for i in range(params.n)]

    def run_task(self, ctx, params, task):
        index, factor = task
        return index * factor

    def reduce(self, ctx, params, results):
        return sum(results)

    def digest_payloads(self, ctx, params, reduced):
        return {"toy_total": str(reduced)}


@pytest.fixture
def toy_spec():
    register_experiment(ToySpec)
    try:
        yield "resilience-toy"
    finally:
        _REGISTRY.pop("resilience-toy", None)


# ----------------------------------------------------------------------
# Retry semantics (serial path — same code as the pool's scheduler)
# ----------------------------------------------------------------------
def test_abort_mode_fails_fast_ignoring_retries(tmp_path):
    policy = RetryPolicy(on_error="abort", retries=5)
    with pytest.raises(RuntimeError, match="flaky task"):
        parallel_map(
            _flaky, [(str(tmp_path), 0)], catalog_spec=SCALE,
            policy=policy,
        )
    assert (tmp_path / "attempts-0").read_text() == "1"


def test_retry_mode_retries_until_success(tmp_path):
    policy = RetryPolicy(
        on_error="retry", retries=3, backoff_base=0.001
    )
    report = TaskRunReport()
    results = parallel_map(
        _flaky, [(str(tmp_path), 0), (str(tmp_path), 1)],
        catalog_spec=SCALE, policy=policy, report=report,
    )
    assert results == [0, 1]
    assert (tmp_path / "attempts-0").read_text() == "3"
    assert report.retried == 4 and report.completed == 2
    assert not report.failures


def test_retry_mode_aborts_after_exhausting_attempts(tmp_path):
    policy = RetryPolicy(
        on_error="retry", retries=1, backoff_base=0.001
    )
    with pytest.raises(RuntimeError, match="flaky task"):
        parallel_map(
            _flaky, [(str(tmp_path), 0)], catalog_spec=SCALE,
            policy=policy,
        )
    assert (tmp_path / "attempts-0").read_text() == "2"


def test_skip_mode_finishes_with_holes(tmp_path):
    policy = RetryPolicy(
        on_error="skip", retries=0, backoff_base=0.001
    )
    report = TaskRunReport()
    results = parallel_map(
        _flaky,
        [(str(tmp_path), 0), (str(tmp_path), 1), (str(tmp_path), 2)],
        catalog_spec=SCALE, policy=policy,
        labels=["a", "b", "c"], report=report,
    )
    assert results == []  # every task fails its single attempt
    assert [f.label for f in report.failures] == ["a", "b", "c"]
    assert all(f.attempts == 1 for f in report.failures)
    assert "flaky task" in report.failures[0].error


def test_skip_holes_preserve_order_of_survivors():
    policy = RetryPolicy(on_error="skip", retries=0)
    faults = FaultPlan.parse("raise:0.5", seed=2)
    report = TaskRunReport()
    results = parallel_map(
        _square, list(range(6)), catalog_spec=SCALE,
        policy=policy, faults=faults, report=report,
    )
    survivors = [i for i in range(6) if faults.decide(i, 0) is None]
    assert results == [i * i for i in survivors]
    assert len(report.failures) == 6 - len(survivors)
    assert 0 < len(report.failures) < 6


def test_retry_metrics_are_counted(tmp_path):
    METRICS.reset()
    policy = RetryPolicy(
        on_error="skip", retries=1, backoff_base=0.001
    )
    parallel_map(
        _flaky, [(str(tmp_path), 0)], catalog_spec=SCALE,
        policy=policy,
    )
    snapshot = METRICS.snapshot()["counters"]
    assert snapshot["engine.task_retries"] == 1
    assert snapshot["engine.task_failures"] == 1


# ----------------------------------------------------------------------
# Timeouts
# ----------------------------------------------------------------------
def test_timeout_interrupts_hung_task_serial():
    policy = RetryPolicy(
        on_error="skip", retries=0, task_timeout=0.2
    )
    report = TaskRunReport()
    started = time.monotonic()
    results = parallel_map(
        _sleepy, [(0, 0.0), (1, 30.0), (2, 0.0)],
        catalog_spec=SCALE, policy=policy, report=report,
    )
    assert time.monotonic() - started < 15.0
    assert results == [0, 2]
    assert len(report.failures) == 1
    assert "task-timeout" in report.failures[0].error


def test_timeout_interrupts_hung_task_in_workers():
    policy = RetryPolicy(
        on_error="skip", retries=0, task_timeout=0.5
    )
    report = TaskRunReport()
    started = time.monotonic()
    results = parallel_map(
        _sleepy, [(0, 0.0), (1, 60.0), (2, 0.0)],
        jobs=2, catalog_spec=SCALE, policy=policy, report=report,
    )
    assert time.monotonic() - started < 30.0
    assert results == [0, 2]
    assert len(report.failures) == 1


def test_injected_hang_is_killed_by_the_timeout():
    policy = RetryPolicy(
        on_error="retry", retries=3, task_timeout=0.3,
        backoff_base=0.001,
    )

    # hang:1.0 would hang every retry too; this plan hangs only the
    # first attempt of each task, so retries succeed.
    class FirstAttemptOnly:
        hang_seconds = 60.0
        seed = 0

        def decide(self, index, attempt):
            return "hang" if attempt == 0 else None

    report = TaskRunReport()
    results = parallel_map(
        _square, [1, 2], catalog_spec=SCALE,
        policy=policy, faults=FirstAttemptOnly(), report=report,
    )
    assert results == [1, 4]
    assert report.retried == 2


# ----------------------------------------------------------------------
# Dead-worker detection (injected kills)
# ----------------------------------------------------------------------
def test_worker_kill_respawns_pool_and_retries():
    policy = RetryPolicy(
        on_error="retry", retries=5, backoff_base=0.001, seed=KILL_SEED
    )
    faults = FaultPlan.parse("kill:0.2,raise:0.1", seed=KILL_SEED)
    assert any(
        faults.decide(i, 0) == "kill" for i in range(4)
    ), "seed must kill at least one first attempt"
    report = TaskRunReport()
    results = parallel_map(
        _square, list(range(4)), jobs=2, catalog_spec=SCALE,
        policy=policy, faults=faults, report=report,
    )
    assert results == [0, 1, 4, 9]
    assert report.retried > 0
    assert not report.failures


def test_worker_kill_aborts_without_retries():
    policy = RetryPolicy(on_error="abort", seed=KILL_SEED)
    faults = FaultPlan.parse("kill:1.0", seed=KILL_SEED)
    with pytest.raises(Exception) as excinfo:
        parallel_map(
            _square, list(range(4)), jobs=2, catalog_spec=SCALE,
            policy=policy, faults=faults,
        )
    assert "worker process died" in str(excinfo.value)


def test_fault_injected_run_matches_clean_run_bitwise():
    """The acceptance property: same results with and without chaos."""
    clean = parallel_map(
        _square, list(range(6)), jobs=2, catalog_spec=SCALE
    )
    chaotic = parallel_map(
        _square, list(range(6)), jobs=2, catalog_spec=SCALE,
        policy=RetryPolicy(
            on_error="retry", retries=5, backoff_base=0.001,
            seed=KILL_SEED,
        ),
        faults=FaultPlan.parse("kill:0.2,raise:0.1", seed=KILL_SEED),
    )
    assert clean == chaotic


# ----------------------------------------------------------------------
# Journal + resume
# ----------------------------------------------------------------------
def test_journal_roundtrip_and_corruption_recovery(tmp_path):
    journal = RunJournal("abc123", root=tmp_path)
    journal.store(0, {"x": 1})
    journal.store(3, [1, 2])
    assert journal.completed() == {0, 3}
    assert journal.load(0) == (True, {"x": 1})
    assert journal.load(1) == (False, None)
    journal.task_path(3).write_bytes(b"not a pickle")
    assert journal.load(3) == (False, None)


def test_journal_serves_completed_tasks_without_execution(tmp_path):
    journal = RunJournal("run1", root=tmp_path)
    journal.store(1, 111)  # pre-journaled with a sentinel value
    report = TaskRunReport()
    results = parallel_map(
        _square, [2, 3, 4], catalog_spec=SCALE,
        journal=journal, report=report,
    )
    # Task 1 came from the journal (111), the others were computed.
    assert results == [4, 111, 16]
    assert report.resumed == 1 and report.completed == 3
    assert journal.completed() == {0, 1, 2}


def test_run_key_is_sensitive_to_configuration():
    from repro.optimizer.config import DEFAULT_PARAMETERS

    base = run_key("figure", "params", DEFAULT_PARAMETERS, "cat", 0)
    assert base == run_key(
        "figure", "params", DEFAULT_PARAMETERS, "cat", 0
    )
    assert base != run_key(
        "census", "params", DEFAULT_PARAMETERS, "cat", 0
    )
    assert base != run_key(
        "figure", "params2", DEFAULT_PARAMETERS, "cat", 0
    )
    assert base != run_key(
        "figure", "params", DEFAULT_PARAMETERS, "cat2", 0
    )
    assert base != run_key(
        "figure", "params", DEFAULT_PARAMETERS, "cat", 1
    )


def test_resume_mismatch_is_rejected(tmp_path, toy_spec):
    ctx = RunContext(
        scale=SCALE, queries={}, resume="not-the-right-id",
        journal_root=tmp_path,
    )
    with pytest.raises(ResumeMismatchError, match="not-the-right"):
        run_experiment(toy_spec, ToyParams(), ctx)


def test_checkpoint_then_resume_reexecutes_only_unfinished(
    tmp_path, toy_spec
):
    params = ToyParams(n=4, factor=3)
    first = RunContext(
        scale=SCALE, queries={}, checkpoint=True,
        journal_root=tmp_path,
    )
    total = run_experiment(toy_spec, params, first)
    assert first.run_id is not None
    journal = RunJournal(first.run_id, root=tmp_path)
    assert journal.completed() == {0, 1, 2, 3}
    # Drop two entries to simulate a run killed mid-sweep.
    journal.task_path(2).unlink()
    journal.task_path(3).unlink()
    second = RunContext(
        scale=SCALE, queries={}, resume="auto",
        journal_root=tmp_path,
    )
    assert run_experiment(toy_spec, params, second) == total
    assert second.result_digests == first.result_digests
    assert second.task_stats["resumed"] == 2
    assert second.task_stats["completed"] == 4
    assert journal.completed() == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# SIGKILL mid-run, then --resume: the acceptance scenario end-to-end
# ----------------------------------------------------------------------
_CRASH_SCRIPT = """
import os, sys
from dataclasses import dataclass

from repro.experiments import RunContext, run_experiment
from repro.experiments.engine import Experiment, register_experiment


@dataclass(frozen=True)
class CrashParams:
    n: int = 5


@register_experiment
class CrashSpec(Experiment):
    name = "crash-test"
    help = "SIGKILLs the whole process at task 3 when asked"
    params_type = CrashParams
    uses_scenario = False

    def plan_tasks(self, ctx, params):
        return list(range(params.n))

    def run_task(self, ctx, params, task):
        if task == 3 and os.environ.get("CRASH_AT_3"):
            os.kill(os.getpid(), 9)  # SIGKILL: no cleanup, no atexit
        return task * 10

    def digest_payloads(self, ctx, params, reduced):
        return {"crash_total": repr(reduced)}


mode = sys.argv[1]
ctx = RunContext(
    scale=1.0, queries={},
    checkpoint=(mode == "checkpoint"),
    resume=("auto" if mode == "resume" else None),
    journal_root=sys.argv[2],
)
result = run_experiment("crash-test", CrashParams(), ctx)
print(result)
print(sorted(ctx.result_digests.items()))
print(ctx.task_stats["resumed"])
"""


def _run_crash_script(tmp_path, mode, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.update(env_extra or {})
    script = tmp_path / "crash_script.py"
    script.write_text(_CRASH_SCRIPT)
    return subprocess.run(
        [sys.executable, str(script), mode, str(tmp_path / "runs")],
        capture_output=True, text=True, env=env, timeout=120,
    )


def test_sigkill_midrun_then_resume_matches_clean_run(tmp_path):
    # 1. A checkpointed run SIGKILLed at task 3 dies with journaled
    #    tasks 0-2 on disk.
    crashed = _run_crash_script(
        tmp_path, "checkpoint", {"CRASH_AT_3": "1"}
    )
    assert crashed.returncode == -signal.SIGKILL
    runs = list((tmp_path / "runs").iterdir())
    assert len(runs) == 1
    journaled = {
        int(p.stem.split("-")[1]) for p in runs[0].glob("task-*.pkl")
    }
    assert journaled == {0, 1, 2}

    # 2. Resuming re-executes only tasks 3 and 4.
    resumed = _run_crash_script(tmp_path, "resume")
    assert resumed.returncode == 0, resumed.stderr

    # 3. An uninterrupted run in a fresh journal dir for comparison.
    clean_dir = tmp_path / "clean"
    clean_dir.mkdir()
    clean = subprocess.run(
        [sys.executable, str(tmp_path / "crash_script.py"),
         "checkpoint", str(clean_dir / "runs")],
        capture_output=True, text=True, timeout=120,
        env={**os.environ,
             "PYTHONPATH": str(SRC) + os.pathsep
             + os.environ.get("PYTHONPATH", "")},
    )
    assert clean.returncode == 0, clean.stderr

    resumed_lines = resumed.stdout.strip().splitlines()
    clean_lines = clean.stdout.strip().splitlines()
    assert resumed_lines[0] == clean_lines[0]  # same reduced result
    assert resumed_lines[1] == clean_lines[1]  # same digests
    assert resumed_lines[2] == "3"  # tasks 0-2 came from the journal
    assert clean_lines[2] == "0"
