"""Tests for the plan-robustness (switching-distance) experiment."""

import math

import pytest

from repro.catalog import build_tpch_catalog
from repro.core.costmodel import optimal_plan_index
from repro.experiments.robustness import (
    analyze_query_robustness,
    format_robustness_table,
    run_robustness,
)
from repro.experiments.scenarios import scenario
from repro.optimizer import DEFAULT_PARAMETERS, candidate_plans
from repro.workloads import build_tpch_queries, tpch_query


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def q20_rows(catalog):
    query = tpch_query("Q20", catalog)
    return analyze_query_robustness(
        query, catalog, scenario("split"), DEFAULT_PARAMETERS
    )


def test_every_device_gets_a_row(q20_rows, catalog):
    query = tpch_query("Q20", catalog)
    layout = scenario("split").layout_for(query)
    expected_groups = {g.name for g in layout.variation_groups()}
    assert {p.group for p in q20_rows.parameters} == expected_groups


def test_q20_partsupp_is_on_the_watch_list(q20_rows):
    """The paper's Section 8.1.2 callout: Q20's plan is especially
    sensitive to the PARTSUPP index device."""
    watch = q20_rows.watch_list(radius_threshold=10.0)
    assert any("PARTSUPP" in name for name in watch)


def test_thresholds_verified_by_reoptimization(q20_rows, catalog):
    """Crossing a reported up-threshold really flips the plan."""
    query = tpch_query("Q20", catalog)
    config = scenario("split")
    layout = config.layout_for(query)
    region = config.region(layout, 10000.0)
    candidates = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region, cell_cap=64
    )
    center = layout.center_costs()
    initial = candidates.initial_plan_index()
    groups = {g.name: g for g in config.groups_for(layout)}
    checked = 0
    for parameter in q20_rows.parameters:
        up = parameter.distance.up_factor
        if math.isinf(up) or up > 5000:
            continue
        group = groups[parameter.group]
        for factor, expect_initial in (
            (up * 0.999, True),
            (up * 1.001, False),
        ):
            values = center.values.copy()
            for index in group.indices:
                values[index] *= factor
            from repro.core.vectors import CostVector

            probe = CostVector(center.space, values)
            winner = optimal_plan_index(candidates.usages, probe)
            assert (winner == initial) == expect_initial, parameter.group
        checked += 1
    assert checked >= 1


def test_cpu_group_present_and_usually_robust(q20_rows):
    cpu = next(p for p in q20_rows.parameters if p.group == "cpu")
    assert cpu.radius > 1.0


def test_regret_at_least_one(q20_rows):
    for parameter in q20_rows.parameters:
        assert parameter.regret_past_switch >= 1.0 - 1e-9


def test_run_robustness_over_workload(catalog):
    queries = build_tpch_queries(catalog)
    subset = {k: queries[k] for k in ("Q1", "Q14")}
    rows = run_robustness("shared", catalog=catalog, queries=subset)
    assert [r.query_name for r in rows] == ["Q1", "Q14"]
    table = format_robustness_table(rows)
    assert "Q14" in table and "radius" in table


def test_single_candidate_query_never_switches(catalog):
    """Q17/Q18 under 'colocated' have a single candidate plan."""
    query = tpch_query("Q17", catalog)
    result = analyze_query_robustness(
        query, catalog, scenario("colocated"), DEFAULT_PARAMETERS
    )
    assert result.most_fragile() is None or all(
        p.regret_past_switch >= 1.0 for p in result.parameters
    )
    table = format_robustness_table([result])
    assert "Q17" in table
