"""``--jobs N`` is a wall-clock knob, not a semantics knob.

Every sweep result must be identical — down to the last float bit —
whether queries run serially in-process or spread over worker
processes, and whether candidate sets come from the disk cache or are
recomputed.
"""

import pytest

from repro.catalog import build_tpch_catalog
from repro.experiments import (
    figure_to_csv,
    parallel_map,
    run_expected_regret,
    run_figure,
    run_validation,
)
from repro.experiments.parallel import worker_catalog, worker_payload
from repro.optimizer.plancache import PlanCache
from repro.workloads import build_tpch_queries

DELTAS = (1.0, 100.0, 10000.0)


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def queries(catalog):
    full = build_tpch_queries(catalog)
    return {k: full[k] for k in ("Q1", "Q6", "Q14")}


def _probe_worker(item):
    rows = worker_catalog().row_count("LINEITEM")
    return (item, rows, worker_payload()["tag"])


def test_parallel_map_serial_path(catalog):
    rows = catalog.row_count("LINEITEM")
    results = parallel_map(
        _probe_worker, [1, 2, 3], jobs=1,
        catalog_spec=catalog, payload={"tag": "x"},
    )
    assert results == [(1, rows, "x"), (2, rows, "x"), (3, rows, "x")]


def test_parallel_map_workers_build_catalog_from_scale(catalog):
    rows_at_10 = build_tpch_catalog(10).row_count("LINEITEM")
    assert rows_at_10 != catalog.row_count("LINEITEM")
    results = parallel_map(
        _probe_worker, [1, 2], jobs=2,
        catalog_spec=10.0, payload={"tag": "y"},
    )
    assert results == [(1, rows_at_10, "y"), (2, rows_at_10, "y")]


def _assert_figures_bitwise_equal(one, two):
    assert figure_to_csv(one) == figure_to_csv(two)
    for a, b in zip(one.curves, two.curves):
        assert a.query_name == b.query_name
        assert a.initial_signature == b.initial_signature
        assert a.n_candidates == b.n_candidates
        for pa, pb in zip(a.curve.points, b.curve.points):
            assert pa.delta == pb.delta
            assert pa.gtc == pb.gtc


def test_figure_jobs2_equals_serial(catalog, queries):
    serial = run_figure(
        "shared", catalog=catalog, queries=queries, deltas=DELTAS
    )
    parallel = run_figure(
        "shared", catalog=catalog, queries=queries, deltas=DELTAS, jobs=2
    )
    _assert_figures_bitwise_equal(serial, parallel)


def test_figure_jobs2_with_cache_equals_serial(tmp_path, catalog, queries):
    cache = PlanCache(tmp_path)
    serial = run_figure(
        "split", catalog=catalog, queries=queries, deltas=DELTAS
    )
    cold = run_figure(
        "split", catalog=catalog, queries=queries, deltas=DELTAS,
        jobs=2, cache=cache,
    )
    warm = run_figure(
        "split", catalog=catalog, queries=queries, deltas=DELTAS,
        jobs=2, cache=cache,
    )
    _assert_figures_bitwise_equal(serial, cold)
    _assert_figures_bitwise_equal(serial, warm)


def test_expected_regret_jobs2_equals_serial(catalog, queries):
    kwargs = dict(
        catalog=catalog, queries=queries, delta=10.0, n_samples=200
    )
    serial = run_expected_regret("shared", **kwargs)
    parallel = run_expected_regret("shared", jobs=2, **kwargs)
    for a, b in zip(serial, parallel):
        assert a == b


def test_validation_jobs2_equals_serial(catalog, queries):
    targets = [queries["Q6"], queries["Q14"]]
    serial = run_validation(targets, catalog, "shared", delta=10.0)
    parallel = run_validation(
        targets, catalog, "shared", delta=10.0, jobs=2
    )
    for (est_a, disc_a), (est_b, disc_b) in zip(serial, parallel):
        assert est_a == est_b
        assert disc_a == disc_b
