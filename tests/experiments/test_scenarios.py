"""Tests for the three storage scenarios."""

import pytest

from repro.catalog import build_tpch_catalog
from repro.experiments.scenarios import (
    DEFAULT_DELTAS,
    SCENARIO_KEYS,
    all_scenarios,
    scenario,
)
from repro.workloads import tpch_query


@pytest.fixture(scope="module")
def q5(scope="module"):
    return tpch_query("Q5", build_tpch_catalog(1))


def test_scenario_lookup():
    assert scenario("shared").figure == "Figure 5"
    assert scenario("split").figure == "Figure 6"
    assert scenario("colocated").figure == "Figure 7"
    with pytest.raises(KeyError):
        scenario("bogus")
    assert tuple(s.key for s in all_scenarios()) == SCENARIO_KEYS


def test_resource_counts_match_paper_formulas(q5):
    """3 for shared; 2k+2 for split; k+2 for colocated (Sec 8.1)."""
    k = len(q5.table_names())  # 6 distinct tables in Q5
    assert scenario("shared").resource_count(q5) == 3
    assert scenario("split").resource_count(q5) == 2 * k + 2
    assert scenario("colocated").resource_count(q5) == k + 2


def test_layout_dimensions_match_resource_counts(q5):
    for key in SCENARIO_KEYS:
        config = scenario(key)
        layout = config.layout_for(q5)
        assert layout.space.dimension == config.resource_count(q5)


def test_shared_groups_are_fully_independent(q5):
    config = scenario("shared")
    layout = config.layout_for(q5)
    groups = config.groups_for(layout)
    assert len(groups) == 3
    assert all(len(g.indices) == 1 for g in groups)


def test_split_groups_lock_per_device(q5):
    config = scenario("split")
    layout = config.layout_for(q5)
    groups = config.groups_for(layout)
    # cpu + one group per device.
    assert len(groups) == layout.space.dimension


def test_region_center_is_db2_defaults(q5):
    config = scenario("shared")
    layout = config.layout_for(q5)
    region = config.region(layout, 10.0)
    assert region.delta == 10.0
    center = region.center
    assert center["disk.seek"] == pytest.approx(24.1)
    assert center["disk.xfer"] == pytest.approx(9.0)


def test_default_delta_grid_spans_paper_range():
    assert DEFAULT_DELTAS[0] == 1.0
    assert DEFAULT_DELTAS[-1] == 10000.0
    assert list(DEFAULT_DELTAS) == sorted(DEFAULT_DELTAS)
