"""Tests for the Figure 5/6/7 worst-case experiment runners.

Full 22-query runs live in the benchmark harness; these tests use a
representative subset so the suite stays fast while still asserting the
paper's qualitative claims.
"""

import pytest

from repro.catalog import build_tpch_catalog
from repro.experiments.worst_case import run_figure, run_query_worst_case
from repro.experiments.scenarios import scenario
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.workloads import build_tpch_queries

DELTAS = (1.0, 10.0, 100.0, 1000.0, 10000.0)


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def queries(catalog):
    full = build_tpch_queries(catalog)
    return {k: full[k] for k in ("Q1", "Q3", "Q6", "Q14", "Q20")}


@pytest.fixture(scope="module")
def figures(catalog, queries):
    return {
        key: run_figure(key, catalog=catalog, queries=queries, deltas=DELTAS)
        for key in ("shared", "split", "colocated")
    }


class TestStructure:
    def test_one_curve_per_query(self, figures, queries):
        for result in figures.values():
            assert {c.query_name for c in result.curves} == set(queries)

    def test_gtc_starts_at_one(self, figures):
        for result in figures.values():
            for curve in result.curves:
                assert curve.curve.points[0].gtc == pytest.approx(1.0)

    def test_curves_monotone_in_delta(self, figures):
        for result in figures.values():
            for curve in result.curves:
                gtcs = curve.curve.gtcs
                assert all(
                    b >= a * (1 - 1e-9) for a, b in zip(gtcs, gtcs[1:])
                ), (result.scenario_key, curve.query_name)

    def test_theorem1_bound_never_violated(self, figures):
        """No curve exceeds delta**2 (Theorem 1 corollary)."""
        for result in figures.values():
            for curve in result.curves:
                for point in curve.curve.points:
                    assert point.gtc <= point.delta**2 * (1 + 1e-6)

    def test_by_query_lookup(self, figures):
        shared = figures["shared"]
        assert shared.by_query()["Q3"].query_name == "Q3"


class TestPaperShapes:
    def test_figure5_all_curves_bounded(self, figures):
        """Sec 8.1.1: with one device, all queries follow the constant
        Theorem 2 bound."""
        census = figures["shared"].growth_census()
        assert census.get("quadratic", 0) == 0

    def test_figure6_multi_table_queries_grow_quadratically(self, figures):
        """Sec 8.1.2: with split devices most queries hit the
        quadratic Theorem 1 regime."""
        split = figures["split"].by_query()
        for name in ("Q3", "Q14", "Q20"):
            assert split[name].growth_class() == "quadratic", name

    def test_figure6_worst_case_dwarfs_figure5(self, figures):
        """Splitting devices raises the aggregate worst case by orders
        of magnitude."""
        assert (
            figures["split"].max_final_gtc()
            > 100 * figures["shared"].max_final_gtc()
        )

    def test_figure7_between_figures_5_and_6(self, figures):
        """Per query, 'split' dominates 'colocated' (its feasible
        region strictly contains the colocated one); against 'shared'
        only the aggregate ordering is meaningful."""
        colocated = figures["colocated"].by_query()
        split = figures["split"].by_query()
        for name in colocated:
            assert (
                colocated[name].final_gtc
                <= split[name].final_gtc * (1 + 1e-9)
            ), name
        assert (
            figures["shared"].max_final_gtc()
            <= figures["colocated"].max_final_gtc() * (1 + 1e-9)
            or figures["shared"].growth_census().get("quadratic", 0) == 0
        )

    def test_q20_is_most_sensitive_in_figure6(self, figures):
        """Sec 8.1.2: query 20 was almost an order of magnitude more
        sensitive than the others."""
        split = figures["split"]
        worst = max(split.curves, key=lambda c: c.final_gtc)
        assert worst.query_name == "Q20"

    def test_single_table_queries_unaffected_by_splitting(self, figures):
        """Q1/Q6 touch one table: device placement barely matters."""
        for name in ("Q1", "Q6"):
            shared = figures["shared"].by_query()[name].final_gtc
            split = figures["split"].by_query()[name].final_gtc
            assert split == pytest.approx(shared, rel=0.05)


class TestSingleQueryRunner:
    def test_explicit_runner_matches_figure(self, catalog, queries, figures):
        config = scenario("shared")
        result = run_query_worst_case(
            queries["Q3"], catalog, DEFAULT_PARAMETERS, config, DELTAS
        )
        from_figure = figures["shared"].by_query()["Q3"]
        assert result.curve.gtcs == from_figure.curve.gtcs
        assert result.initial_signature == from_figure.initial_signature

    def test_initial_plan_reported(self, figures):
        for result in figures.values():
            for curve in result.curves:
                assert curve.initial_signature
                assert curve.n_candidates >= 1
