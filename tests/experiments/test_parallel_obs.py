"""Observability across ``--jobs N``: workers ship metrics and spans
back to the parent, so a parallel run's metric totals and span-tree
shape are identical to a serial run's — only the timings differ."""

import pytest

from repro.catalog import build_tpch_catalog
from repro.experiments import run_expected_regret
from repro.obs import METRICS, TRACER
from repro.workloads import build_tpch_queries


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def queries(catalog):
    full = build_tpch_queries(catalog)
    return {k: full[k] for k in ("Q1", "Q6", "Q14")}


@pytest.fixture(autouse=True)
def _fresh_obs():
    from repro.obs import PROFILER

    def clean():
        METRICS.reset()
        TRACER.reset()
        TRACER.enabled = False
        PROFILER.disable()
        PROFILER.reset()

    clean()
    yield
    clean()


def _shape(exported):
    return [
        (node["name"], _shape(node["children"])) for node in exported
    ]


def _run(catalog, queries, jobs):
    METRICS.reset()
    TRACER.reset()
    TRACER.enabled = True
    rows = run_expected_regret(
        "shared", catalog=catalog, queries=queries,
        delta=10.0, n_samples=100, jobs=jobs,
    )
    return rows, METRICS.snapshot(), TRACER.export()


def test_jobs2_metrics_and_span_shape_match_serial(catalog, queries):
    serial_rows, serial_metrics, serial_trace = _run(
        catalog, queries, jobs=1
    )
    parallel_rows, parallel_metrics, parallel_trace = _run(
        catalog, queries, jobs=2
    )
    assert serial_rows == parallel_rows
    assert parallel_metrics["counters"] == serial_metrics["counters"]
    assert (
        parallel_metrics["histograms"] == serial_metrics["histograms"]
    )
    assert _shape(parallel_trace) == _shape(serial_trace)
    # The expected instrumentation actually fired.
    assert serial_metrics["counters"]["expected.samples_total"] == 300
    assert serial_metrics["histograms"]["expected.gtc"]["count"] == 300
    names = [name for name, _ in _shape(serial_trace)]
    assert names == ["parallel.task"] * 3


def test_workers_leave_parent_registry_consistent(catalog, queries):
    """A second parallel sweep adds on top of the first — worker resets
    never leak into the parent process."""
    _run(catalog, queries, jobs=2)
    run_expected_regret(
        "shared", catalog=catalog, queries=queries,
        delta=10.0, n_samples=100, jobs=2,
    )
    counters = METRICS.snapshot()["counters"]
    assert counters["expected.samples_total"] == 600


def test_progress_events_do_not_perturb_parallel_parity(
    catalog, queries
):
    """Live progress is pure observation: with meters forced on, a
    ``--jobs 2`` run still grafts the same span tree and metric totals
    as a silent serial run."""
    import io

    from repro.obs import PROGRESS

    serial_rows, serial_metrics, serial_trace = _run(
        catalog, queries, jobs=1
    )
    stream = io.StringIO()
    PROGRESS.configure(mode="on", stream=stream)
    try:
        parallel_rows, parallel_metrics, parallel_trace = _run(
            catalog, queries, jobs=2
        )
    finally:
        PROGRESS.configure(mode="auto", log_level="warning", stream=None)
    assert parallel_rows == serial_rows
    assert parallel_metrics["counters"] == serial_metrics["counters"]
    assert (
        parallel_metrics["histograms"] == serial_metrics["histograms"]
    )
    assert _shape(parallel_trace) == _shape(serial_trace)
    # The meter actually rendered, labelled with scenario and jobs.
    output = stream.getvalue()
    assert "[shared] --jobs 2" in output
    assert "3/3 tasks" in output


def test_tracing_disabled_parallel_run_records_nothing(catalog, queries):
    assert not TRACER.enabled
    run_expected_regret(
        "shared", catalog=catalog, queries=queries,
        delta=10.0, n_samples=50, jobs=2,
    )
    assert TRACER.export() == []

def test_profiled_parallel_run_merges_worker_samples(catalog, queries):
    """``--jobs 2`` with the profiler on: each worker samples its own
    tasks and the parent merges the folded stacks — without changing
    any result."""
    from repro.obs import PROFILER

    serial_rows, _, _ = _run(catalog, queries, jobs=1)
    PROFILER.reset()
    PROFILER.enable(997)
    try:
        parallel_rows = run_expected_regret(
            "shared", catalog=catalog, queries=queries,
            delta=10.0, n_samples=100, jobs=2,
        )
    finally:
        PROFILER.disable()
    assert parallel_rows == serial_rows
    state = PROFILER.snapshot()
    assert sum(state["stacks"].values()) > 0
    # Worker stacks went through the merge channel: frames from the
    # instrumented task wrapper, not just the parent's pool loop.
    frames = ";".join(state["stacks"])
    assert "_instrumented_call" in frames or "run_task" in frames


def test_unprofiled_parallel_run_collects_nothing(catalog, queries):
    from repro.obs import PROFILER

    assert not PROFILER.enabled
    run_expected_regret(
        "shared", catalog=catalog, queries=queries,
        delta=10.0, n_samples=50, jobs=2,
    )
    assert PROFILER.sample_count == 0
    assert PROFILER.thread is None
