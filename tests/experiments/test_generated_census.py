"""The generated census: determinism, accumulator, CLI parity.

A census over seeded random queries must behave exactly like the
TPC-H experiments: every number a pure function of ``(seed, index)``,
serial and ``--jobs N`` digests bit-identical, and checkpoint→resume
indistinguishable from an uninterrupted run.
"""

import argparse
import json

import pytest

from repro.cli import main
from repro.experiments import get_experiment, run_generated_census
from repro.experiments.report import format_generated_census
from repro.experiments.scenarios import scenario
from repro.experiments.usage_analysis import (
    DEFAULT_REGIME_DELTAS,
    GeneratedCensus,
    analyze_generated_query,
)

N = 8
SEED = 11


# ----------------------------------------------------------------------
# Per-query analysis: deterministic in (seed, index) alone
# ----------------------------------------------------------------------
def test_analyze_generated_query_is_deterministic():
    config = scenario("colocated")
    first = analyze_generated_query(3, config, seed=SEED)
    second = analyze_generated_query(3, config, seed=SEED)
    assert first == second
    assert first.index == 3
    assert first.n_candidates >= 1
    assert 0.0 <= first.wrong_fraction <= 1.0
    assert first.regime_deltas == DEFAULT_REGIME_DELTAS
    assert len(first.regime_regrets) == len(DEFAULT_REGIME_DELTAS)
    for regrets in first.regime_regrets:
        assert all(value >= 1.0 - 1e-9 for value in regrets)


def test_analyze_generated_query_varies_with_index_and_seed():
    config = scenario("colocated")
    base = analyze_generated_query(0, config, seed=SEED)
    assert analyze_generated_query(1, config, seed=SEED) != base
    assert analyze_generated_query(0, config, seed=SEED + 1) != base


# ----------------------------------------------------------------------
# Accumulator and renderer
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def census():
    return run_generated_census(N, seed=SEED)


def test_generated_census_accumulator_statistics(census):
    assert isinstance(census, GeneratedCensus)
    assert census.n_queries == N
    assert census.sizes.total == N
    assert census.wrong.count == N
    assert 0.0 <= census.contested_fraction <= 1.0
    assert [curve.delta for curve in census.regimes] == list(
        DEFAULT_REGIME_DELTAS
    )
    for curve in census.regimes:
        assert curve.total == N * 64  # regime_samples per query
        assert curve.regret.mean >= 1.0 - 1e-9
        assert curve.regret.max <= curve.bound * (1 + 1e-9)
    assert len(census.worst) == min(N, census.worst_k)
    # worst is sorted most-contested first.
    fractions = [fraction for fraction, __ in census.worst]
    assert fractions == sorted(fractions, reverse=True)


def test_generated_census_regret_grows_with_delta(census):
    means = [curve.regret.mean for curve in census.regimes]
    assert means == sorted(means)


def test_generated_census_render(census):
    text = format_generated_census(census)
    assert f"generated census [colocated] · {N} queries" in text
    assert "candidate-set size distribution:" in text
    assert "regret regimes" in text
    assert "bound d^2" in text


def test_programmatic_rerun_is_bit_identical(census):
    again = run_generated_census(N, seed=SEED)
    assert format_generated_census(again) == format_generated_census(
        census
    )


# ----------------------------------------------------------------------
# CLI: scenario default, digest parity, checkpoint/resume
# ----------------------------------------------------------------------
def test_generated_mode_defaults_scenario_to_colocated():
    spec = get_experiment("census")
    generated = argparse.Namespace(generated=100)
    tpch = argparse.Namespace(generated=0)
    assert spec.scenario_default_for(generated) == "colocated"
    assert spec.scenario_default_for(tpch) is None


def _cli(tmp_path, tag, extra=()):
    manifest = tmp_path / f"manifest-{tag}.json"
    assert main([
        "census", "--generated", str(N), "--seed", str(SEED),
        "--no-cache", "--manifest", str(manifest), *extra,
    ]) == 0
    return json.loads(manifest.read_text())


def test_cli_serial_vs_jobs2_digest_parity(tmp_path, monkeypatch,
                                           capsys):
    monkeypatch.chdir(tmp_path)
    serial = _cli(tmp_path, "serial")
    out_serial = capsys.readouterr().out
    fanout = _cli(tmp_path, "jobs2", ["--jobs", "2"])
    out_fanout = capsys.readouterr().out
    assert serial["result_digests"] == fanout["result_digests"]
    assert serial["result_digests"]["generated_census"]
    assert out_serial == out_fanout


def test_cli_checkpoint_then_resume_digest_parity(tmp_path, monkeypatch,
                                                  capsys):
    monkeypatch.chdir(tmp_path)
    fresh = _cli(tmp_path, "fresh", ["--checkpoint"])
    capsys.readouterr()
    resumed = _cli(tmp_path, "resumed", ["--resume"])
    capsys.readouterr()
    assert fresh["result_digests"] == resumed["result_digests"]
    assert resumed["tasks"]["resumed"] == N
    assert resumed["tasks"]["completed"] == N
