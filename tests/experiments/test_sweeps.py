"""The shared sweep helpers and index-backed experiment parity."""

import numpy as np
import pytest

from repro.catalog import build_tpch_catalog
from repro.core.feasible import FeasibleRegion
from repro.core.planindex import PlanIndex
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector
from repro.experiments import CensusParams, RunContext, run_experiment
from repro.experiments.sweeps import (
    monte_carlo_shares,
    plan_index_for,
    sweep_optimal_totals,
    sweep_winners,
)
from repro.workloads import build_tpch_queries


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def queries(catalog):
    return build_tpch_queries(catalog)


def _matrix_and_region(m=120, d=4, seed=0):
    rng = np.random.default_rng(seed)
    pool = np.exp(rng.normal(0.0, 1.0, size=(20, d)))
    matrix = (rng.random((m, 20)) < 0.2) @ pool + 0.01
    space = ResourceSpace.from_names([f"r{i}" for i in range(d)])
    region = FeasibleRegion(
        CostVector(space, np.full(d, 2.0)), 100.0
    )
    return matrix, region


def test_sweep_winners_identical_with_and_without_index():
    matrix, region = _matrix_and_region()
    costs = region.sample_matrix(np.random.default_rng(1), 1000)
    index = PlanIndex(matrix, region, min_plans=1, witness_samples=256)
    np.testing.assert_array_equal(
        sweep_winners(matrix, costs, None),
        sweep_winners(matrix, costs, index),
    )


def test_sweep_optimal_totals_bitwise_across_paths():
    matrix, region = _matrix_and_region(seed=2)
    costs = region.sample_matrix(np.random.default_rng(3), 500)
    index = PlanIndex(matrix, region, min_plans=1, witness_samples=256)
    dense_winners, dense_totals = sweep_optimal_totals(
        matrix, costs, None
    )
    index_winners, index_totals = sweep_optimal_totals(
        matrix, costs, index
    )
    np.testing.assert_array_equal(dense_winners, index_winners)
    # Totals are recomputed as winner-row dot products on both paths,
    # so they agree bitwise, not just approximately.
    np.testing.assert_array_equal(dense_totals, index_totals)


def test_monte_carlo_shares_sum_to_one_and_match_dense():
    matrix, region = _matrix_and_region(seed=4)
    index = PlanIndex(matrix, region, min_plans=1, witness_samples=256)
    dense = monte_carlo_shares(
        matrix, region, np.random.default_rng(5), 6000, None
    )
    indexed = monte_carlo_shares(
        matrix, region, np.random.default_rng(5), 6000, index
    )
    assert dense.sum() == pytest.approx(1.0)
    np.testing.assert_array_equal(dense, indexed)


def test_monte_carlo_shares_rejects_nonpositive_samples():
    matrix, region = _matrix_and_region(seed=6)
    with pytest.raises(ValueError, match="positive"):
        monte_carlo_shares(
            matrix, region, np.random.default_rng(0), 0
        )


def test_plan_index_for_respects_activation(monkeypatch):
    from repro.optimizer.parametric import CandidateSet

    matrix, region = _matrix_and_region(m=6)

    class _Plan:
        def __init__(self, row, name):
            self.signature = name
            self.usage = type("U", (), {"values": row})()

    plans = [_Plan(row, f"p{i}") for i, row in enumerate(matrix[:6])]
    small = CandidateSet(
        query_name="toy", plans=plans, region=region, truncated=False
    )
    assert plan_index_for(small) is None  # below the threshold
    monkeypatch.setenv("REPRO_PLAN_INDEX_MIN_PLANS", "1")
    forced = CandidateSet(
        query_name="toy", plans=plans, region=region, truncated=False
    )
    assert plan_index_for(forced) is not None


def test_index_backed_census_serial_vs_jobs2_digest_parity(
    monkeypatch, catalog, queries
):
    """Forcing the index on (threshold 1) must not perturb digests.

    Workers inherit the environment, so the env override reaches the
    ``--jobs 2`` pool as well; parity proves the index answers match
    the dense kernel bit-for-bit end to end.
    """
    monkeypatch.setenv("REPRO_PLAN_INDEX_MIN_PLANS", "1")
    params = CensusParams(scenario_key="split")
    subset = {name: queries[name] for name in ("Q6", "Q14")}
    serial_ctx = RunContext(catalog=catalog, queries=subset, jobs=1)
    fanout_ctx = RunContext(catalog=catalog, queries=subset, jobs=2)
    run_experiment("census", params, serial_ctx)
    run_experiment("census", params, fanout_ctx)
    assert serial_ctx.result_digests == fanout_ctx.result_digests
    assert serial_ctx.result_digests

    # And the digests match an index-free run of the same census.
    monkeypatch.setenv("REPRO_NO_PLAN_INDEX", "1")
    dense_ctx = RunContext(catalog=catalog, queries=subset, jobs=1)
    run_experiment("census", params, dense_ctx)
    assert dense_ctx.result_digests == serial_ctx.result_digests
