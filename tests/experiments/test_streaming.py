"""The streaming-reducer protocol: parity, ordering, snapshots.

The engine now drives every spec through
``make_accumulator -> absorb (task-index order) -> finalize``.  These
tests pin the three promises that refactor made:

* every registered spec produces digests identical to the legacy
  batch ``reduce`` over the collected result list;
* ``absorb`` sees results in task-index order regardless of
  ``--jobs``, and batch-only specs keep working through the shim;
* checkpointed runs snapshot the accumulator, prune absorbed task
  pickles, and resume through the snapshot — degrading gracefully
  when the snapshot is corrupt.
"""

import pickle
from dataclasses import dataclass

import pytest

from repro.catalog import build_tpch_catalog
from repro.experiments import (
    CensusParams,
    ExpectedParams,
    RobustnessParams,
    RunContext,
    ValidationParams,
    get_experiment,
    register_experiment,
    run_experiment,
)
from repro.experiments import engine as engine_module
from repro.experiments.engine import _REGISTRY, Experiment
from repro.experiments.worst_case import FigureParams
from repro.workloads import build_tpch_queries


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def queries(catalog):
    return build_tpch_queries(catalog)


# ----------------------------------------------------------------------
# Streaming == legacy batch, for every registered spec
# ----------------------------------------------------------------------
SPEC_CASES = [
    ("figure", FigureParams(scenario_key="shared", deltas=(1.0, 10.0))),
    ("expected", ExpectedParams(scenario_key="shared", n_samples=200)),
    (
        "validate",
        ValidationParams(
            scenario_key="shared", query_names=("Q6",), delta=10.0
        ),
    ),
    ("robustness", RobustnessParams(scenario_key="shared")),
    ("census", CensusParams(scenario_key="split")),
]


@pytest.mark.parametrize(
    "name,params", SPEC_CASES, ids=[case[0] for case in SPEC_CASES]
)
def test_streaming_digests_match_legacy_batch_reduce(
    name, params, catalog, queries
):
    spec = get_experiment(name)
    subset = {"Q6": queries["Q6"]}
    streaming_ctx = RunContext(catalog=catalog, queries=subset)
    streaming = run_experiment(name, params, streaming_ctx)
    batch_ctx = RunContext(catalog=catalog, queries=subset)
    results = [
        spec.run_task(batch_ctx, params, task)
        for task in spec.plan_tasks(batch_ctx, params)
    ]
    legacy = spec.reduce(batch_ctx, params, results)
    assert spec.digest_payloads(
        streaming_ctx, params, streaming
    ) == spec.digest_payloads(batch_ctx, params, legacy)


# ----------------------------------------------------------------------
# Toy specs: the shim, explicit accumulators, and absorb ordering
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StreamParams:
    n: int = 10


class BatchOnlySpec(Experiment):
    """Defines only the legacy ``reduce`` — must run through the shim."""

    name = "toy-batch-only"
    help = "sum via legacy reduce"
    params_type = StreamParams
    uses_scenario = False

    def plan_tasks(self, ctx, params):
        return list(range(params.n))

    def run_task(self, ctx, params, task):
        return task * 2

    def reduce(self, ctx, params, results):
        return sum(results)

    def render(self, ctx, params, reduced):
        return f"{reduced}\n"

    def digest_payloads(self, ctx, params, reduced):
        return {"toy_batch": str(reduced)}


class StreamingOrderSpec(Experiment):
    """Records the tasks ``absorb`` sees, to pin delivery order."""

    name = "toy-stream-order"
    help = "absorb-order recorder"
    params_type = StreamParams
    uses_scenario = False

    def plan_tasks(self, ctx, params):
        # A lazy generator: the engine must not need len().
        return (i for i in range(params.n))

    def run_task(self, ctx, params, task):
        return task * task

    def make_accumulator(self, ctx, params):
        return {"tasks": [], "total": 0}

    def absorb(self, ctx, params, acc, task, result):
        acc["tasks"].append(task)
        acc["total"] += result
        return acc

    def finalize(self, ctx, params, acc):
        return acc

    def render(self, ctx, params, reduced):
        return f"{reduced['total']}\n"

    def digest_payloads(self, ctx, params, reduced):
        return {"toy_stream": repr(reduced)}


@pytest.fixture
def toy_specs():
    register_experiment(BatchOnlySpec)
    register_experiment(StreamingOrderSpec)
    try:
        yield
    finally:
        _REGISTRY.pop("toy-batch-only", None)
        _REGISTRY.pop("toy-stream-order", None)


def test_batch_only_spec_runs_through_the_shim(toy_specs, catalog):
    ctx = RunContext(catalog=catalog, queries={})
    result = run_experiment("toy-batch-only", StreamParams(n=5), ctx)
    assert result == 2 * (0 + 1 + 2 + 3 + 4)


def test_lazy_plan_tasks_and_absorb_order_serial(toy_specs, catalog):
    ctx = RunContext(catalog=catalog, queries={})
    result = run_experiment("toy-stream-order", StreamParams(n=8), ctx)
    assert result["tasks"] == list(range(8))
    assert result["total"] == sum(i * i for i in range(8))


def test_absorb_order_is_task_index_order_under_jobs2(
    toy_specs, catalog
):
    params = StreamParams(n=24)
    serial = run_experiment(
        "toy-stream-order", params,
        RunContext(catalog=catalog, queries={}, jobs=1),
    )
    fanout = run_experiment(
        "toy-stream-order", params,
        RunContext(catalog=catalog, queries={}, jobs=2),
    )
    assert fanout["tasks"] == list(range(24))
    assert fanout == serial


# ----------------------------------------------------------------------
# Accumulator snapshots on checkpointed runs
# ----------------------------------------------------------------------
@pytest.fixture
def snapshot_interval(monkeypatch):
    monkeypatch.setattr(engine_module, "_SNAPSHOT_INTERVAL", 4)


def _checkpointed_run(catalog, tmp_path, resume=None):
    ctx = RunContext(
        catalog=catalog, queries={}, checkpoint=True, resume=resume,
        journal_root=tmp_path,
    )
    result = run_experiment("toy-stream-order", StreamParams(n=10), ctx)
    return result, ctx


def test_checkpoint_snapshots_and_prunes_absorbed_tasks(
    toy_specs, snapshot_interval, catalog, tmp_path
):
    result, ctx = _checkpointed_run(catalog, tmp_path)
    journal_dir = tmp_path / ctx.run_id
    snapshot = journal_dir / "acc.pkl"
    assert snapshot.exists()
    payload = pickle.loads(snapshot.read_bytes())
    assert payload["watermark"] == 8  # last multiple of the interval
    assert payload["acc"]["tasks"] == list(range(8))
    # Tasks the snapshot absorbed are pruned; the tail is journaled.
    remaining = sorted(
        int(p.stem[len("task-"):])
        for p in journal_dir.glob("task-*.pkl")
    )
    assert remaining == [8, 9]
    assert result["tasks"] == list(range(10))


def test_resume_replays_through_the_snapshot(
    toy_specs, snapshot_interval, catalog, tmp_path
):
    fresh, __ = _checkpointed_run(catalog, tmp_path)
    resumed, ctx = _checkpointed_run(catalog, tmp_path, resume="auto")
    assert resumed == fresh
    # 8 tasks skipped via the snapshot + 2 replayed from the journal.
    assert ctx.task_stats["resumed"] == 10
    assert ctx.task_stats["completed"] == 10


def test_corrupt_snapshot_falls_back_to_per_task_replay(
    toy_specs, snapshot_interval, catalog, tmp_path
):
    fresh, first_ctx = _checkpointed_run(catalog, tmp_path)
    (tmp_path / first_ctx.run_id / "acc.pkl").write_bytes(b"garbage")
    resumed, ctx = _checkpointed_run(catalog, tmp_path, resume="auto")
    assert resumed == fresh
    # Only the unpruned tail could be replayed; the rest re-executed.
    assert ctx.task_stats["resumed"] == 2
    assert ctx.task_stats["completed"] == 10
