"""Tests for experiment report rendering."""

import pytest

from repro.catalog import build_tpch_catalog
from repro.experiments.report import (
    figure_to_csv,
    format_census_table,
    format_figure_summary,
    format_figure_table,
    format_parameter_table,
)
from repro.experiments.usage_analysis import run_usage_analysis
from repro.experiments.worst_case import run_figure
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.workloads import build_tpch_queries


@pytest.fixture(scope="module")
def figure():
    catalog = build_tpch_catalog(100)
    queries = build_tpch_queries(catalog)
    subset = {k: queries[k] for k in ("Q1", "Q14")}
    return run_figure(
        "shared", catalog=catalog, queries=subset,
        deltas=(1.0, 10.0, 100.0),
    )


@pytest.fixture(scope="module")
def analysis():
    catalog = build_tpch_catalog(100)
    queries = build_tpch_queries(catalog)
    subset = {k: queries[k] for k in ("Q1", "Q14")}
    return run_usage_analysis("split", catalog=catalog, queries=subset)


def test_figure_table_contains_all_queries_and_deltas(figure):
    table = format_figure_table(figure)
    assert "Q1" in table and "Q14" in table
    assert "d=1" in table and "d=100" in table


def test_figure_csv_is_parseable(figure):
    csv_text = figure_to_csv(figure)
    lines = csv_text.strip().splitlines()
    assert lines[0] == "query,1,10,100"
    assert len(lines) == 3
    for line in lines[1:]:
        cells = line.split(",")
        assert len(cells) == 4
        float(cells[1])  # numeric


def test_figure_summary_mentions_figure_and_regimes(figure):
    summary = format_figure_summary(figure)
    assert "Figure 5" in summary
    assert "constant curves" in summary
    assert "most sensitive query" in summary


def test_census_table_columns(analysis):
    table = format_census_table(analysis)
    assert "acc-path" in table
    assert "Q14" in table
    assert "bound" in table


def test_parameter_table_matches_paper_layout():
    rendered = format_parameter_table(DEFAULT_PARAMETERS.as_db2_table())
    assert "DB2_HASH_JOIN" in rendered
    assert "OPT_BUFFPAGE" in rendered
    assert "640000" in rendered
    assert rendered.splitlines()[0].startswith("Parameter Name")


def test_figure_chart_renders(figure):
    from repro.experiments.report import format_figure_chart

    chart = format_figure_chart(figure, ["Q1", "Q14"], height=8, width=30)
    lines = chart.splitlines()
    assert lines[0].startswith("log GTC")
    assert lines[-1].strip().endswith("x=Q14")
    grid = [line for line in lines if line.startswith("|")]
    assert len(grid) == 8


def test_figure_chart_rejects_empty_selection(figure):
    import pytest as _pytest

    from repro.experiments.report import format_figure_chart

    with _pytest.raises(ValueError):
        format_figure_chart(figure, ["Q99"])
