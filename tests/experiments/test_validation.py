"""Tests for the black-box algorithm validation experiments."""

import pytest

from repro.catalog import build_tpch_catalog
from repro.experiments.validation import (
    validate_discovery,
    validate_estimation,
)
from repro.workloads import tpch_query


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def q14(catalog):
    return tpch_query("Q14", catalog)


class TestEstimationValidation:
    def test_meets_paper_one_percent_criterion(self, catalog, q14):
        """Sec 6.1.1: prediction discrepancy below one percent."""
        result = validate_estimation(q14, catalog, "shared", delta=100.0)
        assert result.prediction_errors  # at least one plan validated
        assert result.meets_paper_criterion
        assert result.worst_prediction_error < 0.01

    def test_component_errors_small_for_exact_blackbox(self, catalog, q14):
        result = validate_estimation(q14, catalog, "shared", delta=100.0)
        for signature, error in result.component_errors.items():
            assert error < 0.05, signature

    def test_optimizer_calls_counted(self, catalog, q14):
        result = validate_estimation(q14, catalog, "shared", delta=100.0)
        assert result.optimizer_calls > 0

    def test_honest_blackbox_agrees(self, catalog, q14):
        """The full-DP black box validates the same way (slower)."""
        result = validate_estimation(
            q14, catalog, "shared", delta=50.0, honest_blackbox=True,
            n_test_points=10,
        )
        assert result.meets_paper_criterion


class TestDiscoveryValidation:
    def test_discovery_finds_full_dimensional_candidates(
        self, catalog, q14
    ):
        result = validate_discovery(q14, catalog, "shared", delta=100.0)
        assert result.recall >= 0.75
        assert not result.spurious

    def test_discovery_on_split_scenario(self, catalog, q14):
        result = validate_discovery(
            q14, catalog, "split", delta=100.0,
            max_optimizer_calls=50000,
        )
        # The split scenario has more dimensions; discovery must still
        # find most of the candidate set and nothing spurious.
        assert result.recall >= 0.6
        assert not result.spurious

    def test_budget_exhaustion_reported_not_hidden(self, catalog, q14):
        result = validate_discovery(
            q14, catalog, "split", delta=100.0, max_optimizer_calls=40
        )
        assert not result.discovery_complete

    def test_exactness_metrics(self, catalog, q14):
        result = validate_discovery(q14, catalog, "shared", delta=100.0)
        assert result.missed | result.found_signatures >= result.true_signatures
        if result.exact:
            assert result.recall == 1.0
