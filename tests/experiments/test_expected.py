"""Tests for the expected-case (Monte-Carlo) regret experiment."""

import pytest

from repro.catalog import build_tpch_catalog
from repro.core.worstcase import worst_case_gtc
from repro.experiments.expected import (
    analyze_expected_regret,
    format_expected_table,
    run_expected_regret,
)
from repro.experiments.scenarios import scenario
from repro.optimizer import DEFAULT_PARAMETERS, candidate_plans
from repro.workloads import build_tpch_queries, tpch_query

DELTA = 100.0


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def q14_result(catalog):
    query = tpch_query("Q14", catalog)
    return analyze_expected_regret(
        query, catalog, scenario("split"), delta=DELTA, n_samples=1500
    )


def test_statistics_ordered(q14_result):
    r = q14_result
    assert 1.0 <= r.median_gtc <= r.mean_gtc or r.median_gtc <= r.p95_gtc
    assert r.median_gtc <= r.p95_gtc <= r.max_sampled_gtc
    assert 0.0 <= r.still_optimal_fraction <= 1.0


def test_expected_below_worst_case(catalog, q14_result):
    """E[GTC] <= max GTC, and sampled max <= exact vertex max."""
    query = tpch_query("Q14", catalog)
    config = scenario("split")
    layout = config.layout_for(query)
    region = config.region(layout, DELTA)
    candidates = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region
    )
    initial = candidates.plans[candidates.initial_plan_index()]
    worst = worst_case_gtc(initial.usage, candidates.usages, region)
    assert q14_result.mean_gtc <= worst.gtc
    assert q14_result.max_sampled_gtc <= worst.gtc * (1 + 1e-9)


def test_expected_regret_is_usually_modest(q14_result):
    """The headline insight the worst case hides: under RANDOM drift
    the stale plan is close to optimal most of the time — the
    adversarial corner dominates the worst case."""
    assert q14_result.median_gtc < 5.0
    assert q14_result.still_optimal_fraction > 0.2


def test_deterministic_given_seed(catalog):
    query = tpch_query("Q14", catalog)
    a = analyze_expected_regret(
        query, catalog, scenario("split"), n_samples=300, seed=7
    )
    b = analyze_expected_regret(
        query, catalog, scenario("split"), n_samples=300, seed=7
    )
    assert a.mean_gtc == b.mean_gtc


def test_run_over_workload_and_format(catalog):
    queries = build_tpch_queries(catalog)
    subset = {k: queries[k] for k in ("Q1", "Q14")}
    rows = run_expected_regret(
        "shared", catalog=catalog, queries=subset, n_samples=400
    )
    assert [r.query_name for r in rows] == ["Q1", "Q14"]
    table = format_expected_table(rows)
    assert "still-opt" in table and "Q14" in table


def test_single_table_query_barely_regrets(catalog):
    query = tpch_query("Q1", catalog)
    result = analyze_expected_regret(
        query, catalog, scenario("shared"), n_samples=500
    )
    assert result.mean_gtc < 1.5
