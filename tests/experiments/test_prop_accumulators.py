"""Merge laws of the streaming accumulators (hypothesis).

The engine checkpoints accumulators and absorbs results shard by
shard, so every accumulator must satisfy: splitting a stream at any
point and merging the two shards equals absorbing the whole stream at
once.  Counts and reservoirs are exact; Welford moments are exact up
to floating-point association.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.accumulators import (
    CountHistogram,
    DecadeHistogram,
    ReservoirSampler,
    WelfordMoments,
    stable_hash64,
)

FLOATS = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
POSITIVE = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def _split(values, cut):
    cut = min(cut, len(values))
    return values[:cut], values[cut:]


# ----------------------------------------------------------------------
# WelfordMoments
# ----------------------------------------------------------------------
@given(st.lists(FLOATS, max_size=50), st.integers(0, 50))
@settings(max_examples=200)
def test_welford_merge_equals_sequential(values, cut):
    whole = WelfordMoments()
    whole.add_many(values)
    left, right = _split(values, cut)
    a, b = WelfordMoments(), WelfordMoments()
    a.add_many(left)
    b.add_many(right)
    a.merge(b)
    assert a.count == whole.count
    assert math.isclose(
        a.mean, whole.mean, rel_tol=1e-9, abs_tol=1e-9
    )
    assert math.isclose(a.m2, whole.m2, rel_tol=1e-6, abs_tol=1e-3)
    assert a.min == whole.min
    assert a.max == whole.max


@given(st.lists(FLOATS, min_size=2, max_size=50))
def test_welford_variance_matches_numpy_definition(values):
    moments = WelfordMoments()
    moments.add_many(values)
    mean = sum(values) / len(values)
    expected = sum((v - mean) ** 2 for v in values) / len(values)
    assert math.isclose(
        moments.variance, expected, rel_tol=1e-6, abs_tol=1e-3
    )
    assert moments.stddev >= 0.0


def test_welford_merge_with_empty_shard_is_identity():
    a = WelfordMoments()
    a.add_many([1.0, 2.0, 3.0])
    before = (a.count, a.mean, a.m2, a.min, a.max)
    a.merge(WelfordMoments())
    assert (a.count, a.mean, a.m2, a.min, a.max) == before


# ----------------------------------------------------------------------
# CountHistogram / DecadeHistogram: merge is exactly addition
# ----------------------------------------------------------------------
@given(st.lists(st.integers(0, 40), max_size=80), st.integers(0, 80))
def test_count_histogram_merge_is_exact(values, cut):
    whole = CountHistogram()
    for value in values:
        whole.add(value)
    left, right = _split(values, cut)
    a, b = CountHistogram(), CountHistogram()
    for value in left:
        a.add(value)
    for value in right:
        b.add(value)
    a.merge(b)
    assert a.counts == whole.counts
    assert a.total == len(values)


@given(st.lists(st.integers(0, 40), min_size=1, max_size=80))
def test_count_histogram_quantiles_bracket_the_data(values):
    histogram = CountHistogram()
    for value in values:
        histogram.add(value)
    assert histogram.quantile(0.0) <= histogram.quantile(1.0)
    assert histogram.quantile(1.0) == max(values)
    assert histogram.quantile(0.5) in values


@given(st.lists(POSITIVE, max_size=80), st.integers(0, 80))
def test_decade_histogram_merge_is_exact(values, cut):
    whole = DecadeHistogram()
    whole.add_many(values)
    left, right = _split(values, cut)
    a, b = DecadeHistogram(), DecadeHistogram()
    a.add_many(left)
    b.add_many(right)
    a.merge(b)
    assert a.counts == whole.counts


@given(st.lists(POSITIVE, min_size=1, max_size=80))
def test_decade_quantile_accurate_to_one_bucket(values):
    histogram = DecadeHistogram()
    histogram.add_many(values)
    width = 10 ** (1.0 / histogram.bins_per_decade)
    estimate = histogram.quantile(1.0)
    true_max = max(max(values), histogram.floor)
    assert true_max / width <= estimate <= true_max * width


def test_decade_histogram_rejects_mismatched_bucketing():
    import pytest

    a = DecadeHistogram(bins_per_decade=10)
    b = DecadeHistogram(bins_per_decade=5)
    with pytest.raises(ValueError, match="different"):
        a.merge(b)


# ----------------------------------------------------------------------
# ReservoirSampler: order-independent, merge-associative
# ----------------------------------------------------------------------
KEYS = st.lists(st.integers(0, 10_000), max_size=60, unique=True)


@given(KEYS, st.integers(0, 60), st.integers(1, 8))
def test_reservoir_split_merge_equals_whole_stream(keys, cut, k):
    whole = ReservoirSampler(k=k)
    for key in keys:
        whole.add(key, key * 10)
    left, right = _split(keys, cut)
    a, b = ReservoirSampler(k=k), ReservoirSampler(k=k)
    for key in left:
        a.add(key, key * 10)
    for key in right:
        b.add(key, key * 10)
    a.merge(b)
    assert a.items == whole.items
    assert len(a.items) == min(k, len(keys))


@given(KEYS, st.integers(1, 8))
def test_reservoir_is_order_independent(keys, k):
    forward = ReservoirSampler(k=k)
    backward = ReservoirSampler(k=k)
    for key in keys:
        forward.add(key)
    for key in reversed(keys):
        backward.add(key)
    assert forward.items == backward.items


def test_reservoir_rejects_mismatched_configuration():
    import pytest

    with pytest.raises(ValueError, match="different k or seed"):
        ReservoirSampler(k=4).merge(ReservoirSampler(k=8))
    with pytest.raises(ValueError, match="different k or seed"):
        ReservoirSampler(seed=1).merge(ReservoirSampler(seed=2))


# ----------------------------------------------------------------------
# stable_hash64: deterministic, seed-sensitive
# ----------------------------------------------------------------------
@given(st.integers(0, 2**62), st.text(max_size=20))
def test_stable_hash_is_deterministic_and_64_bit(seed, key):
    first = stable_hash64(seed, key)
    assert first == stable_hash64(seed, key)
    assert 0 <= first < 2**64


def test_stable_hash_known_values_pin_the_function():
    # Changing the hash silently reshuffles every reservoir sample —
    # these pins force that to be an explicit, versioned decision.
    assert stable_hash64(0, 0) != stable_hash64(1, 0)
    assert stable_hash64(0, 0) != stable_hash64(0, 1)
    # repr-keyed: an int and its string differ.
    assert stable_hash64(7, 42) != stable_hash64(7, "42")
