"""The experiment engine: registry, RunContext, and the generic executor.

A toy :class:`ExperimentSpec` exercises the whole
plan/run/reduce/render protocol (including ``--jobs 2`` digest parity
through the one generic executor); golden files pin the promise that
the registry-driven CLI output is byte-identical to the pre-engine
runners.
"""

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.catalog import build_tpch_catalog
from repro.cli import main
from repro.experiments import (
    CensusParams,
    ExperimentSpec,
    RunContext,
    UnknownQueryError,
    experiment_names,
    get_experiment,
    register_experiment,
    run_experiment,
)
from repro.experiments.engine import _REGISTRY, Experiment
from repro.workloads import build_tpch_queries

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def queries(catalog):
    return build_tpch_queries(catalog)


# ----------------------------------------------------------------------
# A toy spec: the full protocol, no optimizer involved.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ToyParams:
    n: int = 4
    factor: int = 3


class ToySpec(Experiment):
    name = "toy-sum"
    help = "sum i*factor for i < n"
    params_type = ToyParams
    uses_scenario = False

    def seeds(self, params):
        return {"toy": params.n}

    def plan_tasks(self, ctx, params):
        return [(i, params.factor) for i in range(params.n)]

    def run_task(self, ctx, params, task):
        index, factor = task
        # The engine must hand every task a usable catalog, serial or not.
        assert ctx.catalog.row_count("LINEITEM") > 0
        return index * factor

    def reduce(self, ctx, params, results):
        return sum(results)

    def render(self, ctx, params, reduced):
        return f"toy total = {reduced}\n"

    def digest_payloads(self, ctx, params, reduced):
        return {"toy_total": str(reduced)}


@pytest.fixture
def toy_spec():
    register_experiment(ToySpec)
    try:
        yield get_experiment("toy-sum")
    finally:
        _REGISTRY.pop("toy-sum", None)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_lists_all_builtin_experiments():
    names = experiment_names()
    for name in ("figure", "expected", "validate", "robustness", "census"):
        assert name in names


def test_registered_specs_satisfy_the_protocol():
    for name in experiment_names():
        assert isinstance(get_experiment(name), ExperimentSpec)


def test_unknown_experiment_error_lists_registered_names():
    with pytest.raises(KeyError, match="registered:.*figure"):
        get_experiment("no-such-experiment")


def test_register_requires_a_name():
    class Nameless(Experiment):
        pass

    with pytest.raises(ValueError, match="no experiment name"):
        register_experiment(Nameless)


# ----------------------------------------------------------------------
# Toy spec through the whole pipeline
# ----------------------------------------------------------------------
def test_toy_spec_plan_run_reduce_render(toy_spec, catalog):
    params = ToyParams(n=5, factor=2)
    ctx = RunContext(catalog=catalog, queries={})
    result = run_experiment("toy-sum", params, ctx)
    assert result == 2 * (0 + 1 + 2 + 3 + 4)
    assert ctx.seeds == {"toy": 5}
    assert set(ctx.result_digests) == {"toy_total"}
    assert toy_spec.render(ctx, params, result) == "toy total = 20\n"


def test_toy_spec_serial_vs_jobs2_digest_parity(toy_spec, catalog):
    params = ToyParams(n=6, factor=7)
    serial_ctx = RunContext(catalog=catalog, queries={}, jobs=1)
    fanout_ctx = RunContext(catalog=catalog, queries={}, jobs=2)
    serial = run_experiment(toy_spec, params, serial_ctx)
    fanout = run_experiment(toy_spec, params, fanout_ctx)
    assert serial == fanout
    assert serial_ctx.result_digests == fanout_ctx.result_digests


def test_real_spec_serial_vs_jobs2_digest_parity(catalog, queries):
    params = CensusParams(scenario_key="split")
    subset = {name: queries[name] for name in ("Q6", "Q14")}
    serial_ctx = RunContext(catalog=catalog, queries=subset, jobs=1)
    fanout_ctx = RunContext(catalog=catalog, queries=subset, jobs=2)
    run_experiment("census", params, serial_ctx)
    run_experiment("census", params, fanout_ctx)
    assert serial_ctx.result_digests == fanout_ctx.result_digests
    assert serial_ctx.result_digests  # parity of something, not nothing


# ----------------------------------------------------------------------
# RunContext
# ----------------------------------------------------------------------
def test_context_builds_catalog_and_workload_lazily():
    ctx = RunContext(scale=100.0)
    assert ctx.catalog_sha is None  # nothing built yet
    assert "Q14" in ctx.queries
    assert ctx.catalog_sha is not None


def test_context_query_filter_and_select(catalog, queries):
    ctx = RunContext(catalog=catalog, queries=queries)
    subset = ctx.select("q6,Q14")
    assert list(subset) == ["Q6", "Q14"]
    with pytest.raises(UnknownQueryError, match="valid choices: Q1"):
        ctx.select(["Q99"])


def test_context_catalog_spec_scale_vs_injected(catalog):
    assert RunContext(scale=10.0).catalog_spec == 10.0
    assert RunContext(catalog=catalog).catalog_spec is catalog


# ----------------------------------------------------------------------
# Golden: registry-driven CLI output is byte-identical to pre-engine
# ----------------------------------------------------------------------
FIGURE_ARGS = [
    "--queries", "Q1,Q6,Q14", "--deltas", "1,10,100",
    "--no-cache", "--no-manifest",
]


def test_figure_fig5_csv_matches_pre_engine_golden(capsys, monkeypatch,
                                                   tmp_path):
    monkeypatch.chdir(tmp_path)
    assert main(["figure", "--scenario", "fig5", *FIGURE_ARGS,
                 "--csv"]) == 0
    out = capsys.readouterr().out
    assert out == (GOLDEN / "figure_fig5.csv").read_text()


def test_figure_fig5_table_matches_pre_engine_golden(capsys, monkeypatch,
                                                     tmp_path):
    monkeypatch.chdir(tmp_path)
    assert main(["figure", "shared", *FIGURE_ARGS]) == 0
    out = capsys.readouterr().out
    assert out == (GOLDEN / "figure_fig5.txt").read_text()
