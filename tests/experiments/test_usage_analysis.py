"""Tests for the Section 8.2 usage-vector analysis."""

import math

import pytest

from repro.catalog import build_tpch_catalog
from repro.experiments.usage_analysis import run_usage_analysis
from repro.workloads import build_tpch_queries

QUERY_SUBSET = ("Q1", "Q3", "Q6", "Q11", "Q14", "Q20")


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def queries(catalog):
    full = build_tpch_queries(catalog)
    return {k: full[k] for k in QUERY_SUBSET}


@pytest.fixture(scope="module")
def analyses(catalog, queries):
    return {
        key: run_usage_analysis(key, catalog=catalog, queries=queries)
        for key in ("shared", "split", "colocated")
    }


def test_shared_device_has_no_complementary_pairs(analyses):
    """Sec 8.2: 'we found no complementary candidate optimal plans for
    any query' on the single-device setup."""
    assert analyses["shared"].queries_with_complementary_plans() == []


def test_shared_device_constant_bounds_are_finite(analyses):
    for row in analyses["shared"].rows:
        assert math.isfinite(row.constant_bound), row.query_name


def test_split_devices_create_complementary_pairs(analyses):
    """Sec 8.2: 'a large number of complementary plans' when each
    table and index group gets its own device."""
    with_pairs = analyses["split"].queries_with_complementary_plans()
    assert len(with_pairs) >= 4


def test_split_complementarity_classes(analyses):
    """Sec 8.2: all complementary plans were access-path or temp
    complementary; no pair was table complementary."""
    totals = analyses["split"].total_class_counts()
    assert totals.get("table", 0) == 0
    assert totals.get("access-path", 0) > 0


def test_colocated_eliminates_access_path_pairs(analyses):
    """Sec 8.2: co-locating tables with their indexes eliminated
    access-path complementary plans; temp pairs remain possible."""
    totals = analyses["colocated"].total_class_counts()
    assert totals.get("access-path", 0) == 0
    assert totals.get("table", 0) == 0


def test_complementary_pairs_have_infinite_bound(analyses):
    for row in analyses["split"].rows:
        if row.has_complementary_pairs:
            assert math.isinf(row.constant_bound), row.query_name


def test_census_shape(analyses):
    for result in analyses.values():
        for row in result.rows:
            n = row.n_candidates
            assert row.census.n_pairs == n * (n - 1) // 2
            assert row.census.n_complementary <= row.census.n_pairs
            # Near-complementary includes all complementary pairs.
            assert (
                row.census.n_near_complementary
                >= row.census.n_complementary
            )


def test_by_query_lookup(analyses):
    table = analyses["shared"].by_query()
    assert set(table) == set(QUERY_SUBSET)
