"""Tests for the mini TPC-H data generator."""

import numpy as np
import pytest

from repro.catalog.tpch import tpch_row_count
from repro.dbgen import generate_tpch


@pytest.fixture(scope="module")
def data():
    return generate_tpch(scale_factor=0.01, seed=42)


def test_deterministic_for_same_seed():
    a = generate_tpch(0.001, seed=7)
    b = generate_tpch(0.001, seed=7)
    assert np.array_equal(
        a.column("LINEITEM", "L_SHIPDATE"),
        b.column("LINEITEM", "L_SHIPDATE"),
    )


def test_different_seeds_differ():
    a = generate_tpch(0.001, seed=1)
    b = generate_tpch(0.001, seed=2)
    assert not np.array_equal(
        a.column("LINEITEM", "L_PARTKEY"),
        b.column("LINEITEM", "L_PARTKEY"),
    )


def test_cardinalities_match_catalog(data):
    for table in ("SUPPLIER", "CUSTOMER", "PART", "ORDERS", "PARTSUPP"):
        assert data.row_count(table) == tpch_row_count(table, 0.01)
    assert data.row_count("REGION") == 5
    assert data.row_count("NATION") == 25


def test_lineitem_count_near_catalog(data):
    expected = tpch_row_count("LINEITEM", 0.01)
    assert data.row_count("LINEITEM") == pytest.approx(expected, rel=0.05)


def test_four_suppliers_per_part(data):
    part_keys = data.column("PARTSUPP", "PS_PARTKEY")
    __, counts = np.unique(part_keys, return_counts=True)
    assert np.all(counts == 4)


def test_partsupp_pairs_unique(data):
    pairs = np.stack(
        [
            data.column("PARTSUPP", "PS_PARTKEY"),
            data.column("PARTSUPP", "PS_SUPPKEY"),
        ]
    )
    assert len(np.unique(pairs, axis=1).T) == pairs.shape[1]


def test_referential_integrity(data):
    n_part = data.row_count("PART")
    n_supplier = data.row_count("SUPPLIER")
    n_orders = data.row_count("ORDERS")
    assert data.column("LINEITEM", "L_PARTKEY").max() <= n_part
    assert data.column("LINEITEM", "L_PARTKEY").min() >= 1
    assert data.column("LINEITEM", "L_SUPPKEY").max() <= n_supplier
    assert data.column("LINEITEM", "L_ORDERKEY").max() <= n_orders
    assert data.column("ORDERS", "O_CUSTKEY").max() <= data.row_count(
        "CUSTOMER"
    )


def test_lineitem_supplier_consistent_with_partsupp(data):
    """Every (partkey, suppkey) in LINEITEM exists in PARTSUPP."""
    ps_pairs = set(
        zip(
            data.column("PARTSUPP", "PS_PARTKEY").tolist(),
            data.column("PARTSUPP", "PS_SUPPKEY").tolist(),
        )
    )
    l_pairs = set(
        zip(
            data.column("LINEITEM", "L_PARTKEY")[:500].tolist(),
            data.column("LINEITEM", "L_SUPPKEY")[:500].tolist(),
        )
    )
    assert l_pairs <= ps_pairs


def test_two_thirds_of_customers_have_orders(data):
    custkeys = np.unique(data.column("ORDERS", "O_CUSTKEY"))
    # No customer divisible by 3 places an order.
    assert np.all(custkeys % 3 != 0)


def test_date_ordering_invariants(data):
    orderkeys = data.column("LINEITEM", "L_ORDERKEY")
    order_dates = data.column("ORDERS", "O_ORDERDATE")[orderkeys - 1]
    ship = data.column("LINEITEM", "L_SHIPDATE")
    receipt = data.column("LINEITEM", "L_RECEIPTDATE")
    assert np.all(ship > order_dates)
    assert np.all(receipt > ship)


def test_lines_per_order_between_1_and_7(data):
    __, counts = np.unique(
        data.column("LINEITEM", "L_ORDERKEY"), return_counts=True
    )
    assert counts.min() >= 1
    assert counts.max() <= 7


def test_value_domains(data):
    assert set(np.unique(data.column("LINEITEM", "L_RETURNFLAG"))) <= {
        0, 1, 2,
    }
    quantity = data.column("LINEITEM", "L_QUANTITY")
    assert quantity.min() >= 1 and quantity.max() <= 50
    size = data.column("PART", "P_SIZE")
    assert size.min() >= 1 and size.max() <= 50
