"""Tests for repro.catalog.schema."""

import pytest

from repro.catalog.schema import Column, Index, Schema, Table


def _table():
    return Table(
        "T",
        (
            Column("A", "integer", 4),
            Column("B", "varchar", 20),
            Column("C", "date", 4),
        ),
        primary_key=("A",),
    )


def test_column_validation():
    with pytest.raises(ValueError, match="unknown column type"):
        Column("X", "blob", 4)
    with pytest.raises(ValueError, match="width"):
        Column("X", "integer", 0)


def test_table_accessors():
    table = _table()
    assert table.column_names == ("A", "B", "C")
    assert table.row_width == 28
    assert table.column("B").width == 20
    with pytest.raises(KeyError):
        table.column("Z")


def test_table_rejects_duplicate_columns():
    with pytest.raises(ValueError, match="duplicate column"):
        Table("T", (Column("A", "integer", 4), Column("A", "date", 4)))


def test_table_rejects_bad_primary_key():
    with pytest.raises(ValueError, match="primary key"):
        Table("T", (Column("A", "integer", 4),), primary_key=("Z",))


def test_index_validation():
    with pytest.raises(ValueError, match="at least one key"):
        Index("I", "T", ())
    with pytest.raises(ValueError, match="duplicate key"):
        Index("I", "T", ("A", "A"))
    index = Index("I", "T", ("A", "B"))
    assert index.leading_column == "A"


def test_schema_consistency_checks():
    schema = Schema()
    schema.add_table(_table())
    with pytest.raises(ValueError, match="already defined"):
        schema.add_table(_table())
    with pytest.raises(ValueError, match="unknown table"):
        schema.add_index(Index("I", "NOPE", ("A",)))
    with pytest.raises(KeyError):
        schema.add_index(Index("I", "T", ("Z",)))


def test_schema_single_clustered_index_per_table():
    schema = Schema()
    schema.add_table(_table())
    schema.add_index(Index("I1", "T", ("A",), clustered=True))
    with pytest.raises(ValueError, match="clustered"):
        schema.add_index(Index("I2", "T", ("B",), clustered=True))


def test_schema_index_lookup_helpers():
    schema = Schema.from_tables(
        [_table()],
        [
            Index("I_A", "T", ("A",), clustered=True),
            Index("I_AB", "T", ("A", "B")),
            Index("I_B", "T", ("B",)),
        ],
    )
    assert {i.name for i in schema.indexes_on("T")} == {"I_A", "I_AB", "I_B"}
    leading_a = schema.indexes_with_leading_column("T", "A")
    assert {i.name for i in leading_a} == {"I_A", "I_AB"}
    assert schema.indexes_with_leading_column("T", "C") == ()
    with pytest.raises(KeyError):
        schema.table("NOPE")
    with pytest.raises(KeyError):
        schema.index("NOPE")
