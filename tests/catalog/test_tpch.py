"""Tests for the analytic TPC-H catalog."""

import pytest

from repro.catalog.tpch import (
    TPCH_TABLE_NAMES,
    build_tpch_catalog,
    tpch_row_count,
    tpch_schema,
)


class TestRowCounts:
    def test_fixed_tables_ignore_scale(self):
        for sf in (1, 10, 100):
            assert tpch_row_count("REGION", sf) == 5
            assert tpch_row_count("NATION", sf) == 25

    def test_linear_tables_at_sf1(self):
        assert tpch_row_count("SUPPLIER", 1) == 10_000
        assert tpch_row_count("CUSTOMER", 1) == 150_000
        assert tpch_row_count("PART", 1) == 200_000
        assert tpch_row_count("PARTSUPP", 1) == 800_000
        assert tpch_row_count("ORDERS", 1) == 1_500_000

    def test_lineitem_exact_published_counts(self):
        assert tpch_row_count("LINEITEM", 1) == 6_001_215
        assert tpch_row_count("LINEITEM", 100) == 600_037_902

    def test_lineitem_interpolated_for_odd_scale(self):
        rows = tpch_row_count("LINEITEM", 0.01)
        assert rows == pytest.approx(60_000, rel=0.01)

    def test_scale_100_matches_paper_database(self):
        """The paper used the 100 GB (SF 100) database."""
        assert tpch_row_count("ORDERS", 100) == 150_000_000
        assert tpch_row_count("PART", 100) == 20_000_000

    def test_bad_inputs(self):
        with pytest.raises(KeyError):
            tpch_row_count("NOPE", 1)
        with pytest.raises(ValueError):
            tpch_row_count("PART", 0)


class TestSchema:
    def test_all_eight_tables_present(self):
        schema = tpch_schema()
        assert set(schema.tables) == set(TPCH_TABLE_NAMES)

    def test_lineitem_has_sixteen_columns(self):
        schema = tpch_schema()
        assert len(schema.table("LINEITEM").columns) == 16

    def test_every_table_has_clustered_pk_index(self):
        schema = tpch_schema()
        for name in TPCH_TABLE_NAMES:
            clustered = [
                i for i in schema.indexes_on(name) if i.clustered
            ]
            assert len(clustered) == 1, name
            assert clustered[0].key_columns == schema.table(name).primary_key

    def test_fdr_style_secondary_indexes_exist(self):
        schema = tpch_schema()
        assert schema.index("L_PK_SK").key_columns == (
            "L_PARTKEY",
            "L_SUPPKEY",
        )
        assert schema.index("O_CK").key_columns == ("O_CUSTKEY",)
        assert schema.index("L_SD").key_columns == ("L_SHIPDATE",)


class TestCatalogStatistics:
    @pytest.fixture(scope="class")
    def catalog(self):
        return build_tpch_catalog(scale_factor=100)

    def test_database_is_about_100gb(self, catalog):
        total_bytes = sum(
            catalog.n_pages(t) * 4096 for t in TPCH_TABLE_NAMES
        )
        assert 70e9 < total_bytes < 160e9

    def test_lineitem_dominates(self, catalog):
        lineitem = catalog.n_pages("LINEITEM")
        for table in TPCH_TABLE_NAMES:
            if table != "LINEITEM":
                assert catalog.n_pages(table) < lineitem

    def test_column_cardinalities_from_dbgen_rules(self, catalog):
        assert catalog.distinct_values("LINEITEM", "L_SHIPDATE") == 2526
        assert catalog.distinct_values("LINEITEM", "L_QUANTITY") == 50
        assert catalog.distinct_values("PART", "P_TYPE") == 150
        assert catalog.distinct_values("PART", "P_BRAND") == 25
        assert catalog.distinct_values("ORDERS", "O_ORDERDATE") == 2406
        assert catalog.distinct_values("CUSTOMER", "C_MKTSEGMENT") == 5

    def test_distinct_never_exceeds_cardinality(self, catalog):
        small = build_tpch_catalog(scale_factor=0.001)
        for table in TPCH_TABLE_NAMES:
            rows = small.row_count(table)
            stats = small.table_stats(table)
            for column_stats in stats.columns.values():
                assert column_stats.n_distinct <= max(rows, 1)

    def test_pk_indexes_clustered_secondary_not(self, catalog):
        assert catalog.index_stats("L_PK").cluster_ratio == 1.0
        assert catalog.index_stats("L_PK_SK").cluster_ratio == 0.0
        assert catalog.index_stats("L_SD").cluster_ratio == 0.0

    def test_orderkey_prefix_index_inherits_clustering(self, catalog):
        """L_OK follows the physical (L_ORDERKEY, L_LINENUMBER) order."""
        assert catalog.index_stats("L_OK").cluster_ratio == 1.0

    def test_index_levels_reasonable_at_scale_100(self, catalog):
        stats = catalog.index_stats("L_PK")
        assert 3 <= stats.levels <= 5
        assert stats.leaf_pages > 1_000_000

    def test_foreign_key_distincts_consistent(self, catalog):
        # Every lineitem partkey exists in PART.
        assert catalog.distinct_values(
            "LINEITEM", "L_PARTKEY"
        ) == catalog.row_count("PART")
        # Only 2/3 of customers have orders.
        assert catalog.distinct_values(
            "ORDERS", "O_CUSTKEY"
        ) == pytest.approx(catalog.row_count("CUSTOMER") * 2 / 3)
