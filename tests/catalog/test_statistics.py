"""Tests for repro.catalog.statistics."""

import math

import pytest

from repro.catalog.schema import Column, Index, Schema, Table
from repro.catalog.statistics import (
    Catalog,
    CatalogStats,
    ColumnStats,
    IndexStats,
    TableStats,
)


def _schema():
    return Schema.from_tables(
        [
            Table(
                "T",
                (Column("A", "integer", 4), Column("B", "char", 96)),
                primary_key=("A",),
            )
        ],
        [Index("I_A", "T", ("A",), clustered=True)],
    )


def _catalog(row_count=100_000):
    stats = CatalogStats()
    stats.tables["T"] = TableStats(
        row_count=row_count,
        row_width=100,
        columns={"A": ColumnStats(n_distinct=row_count)},
    )
    stats.indexes["I_A"] = IndexStats.derive(
        row_count=row_count, key_width=4, cluster_ratio=1.0
    )
    return Catalog(_schema(), stats)


class TestTableStats:
    def test_pages_from_rows_and_width(self):
        stats = TableStats(row_count=100_000, row_width=100)
        # 4096 * 0.96 // 100 = 39 rows/page.
        assert stats.rows_per_page == 39
        assert stats.n_pages == math.ceil(100_000 / 39)

    def test_empty_table_has_one_page(self):
        assert TableStats(row_count=0, row_width=10).n_pages == 1

    def test_wide_rows_one_per_page(self):
        stats = TableStats(row_count=10, row_width=8000, page_size=4096)
        assert stats.rows_per_page == 1
        assert stats.n_pages == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            TableStats(row_count=-1, row_width=10)
        with pytest.raises(ValueError):
            TableStats(row_count=1, row_width=0)
        with pytest.raises(ValueError):
            ColumnStats(n_distinct=0)
        with pytest.raises(ValueError):
            ColumnStats(n_distinct=5, null_fraction=2.0)


class TestIndexStats:
    def test_derive_shape(self):
        stats = IndexStats.derive(row_count=1_000_000, key_width=4, cluster_ratio=0.0)
        # (4096*0.7)//12 = 238 entries/leaf.
        assert stats.leaf_pages == math.ceil(1_000_000 / 238)
        assert stats.levels >= 2
        assert stats.cluster_ratio == 0.0

    def test_tiny_index_single_level(self):
        stats = IndexStats.derive(row_count=10, key_width=4, cluster_ratio=1.0)
        assert stats.leaf_pages == 1
        assert stats.levels == 1

    def test_levels_grow_logarithmically(self):
        small = IndexStats.derive(10_000, 4, 0.0)
        large = IndexStats.derive(100_000_000, 4, 0.0)
        assert large.levels > small.levels
        assert large.levels <= small.levels + 3

    def test_validation(self):
        with pytest.raises(ValueError):
            IndexStats(leaf_pages=0, levels=1, key_width=4, cluster_ratio=0.5)
        with pytest.raises(ValueError):
            IndexStats(leaf_pages=1, levels=0, key_width=4, cluster_ratio=0.5)
        with pytest.raises(ValueError):
            IndexStats(leaf_pages=1, levels=1, key_width=4, cluster_ratio=1.5)


class TestCatalog:
    def test_accessors(self):
        catalog = _catalog()
        assert catalog.row_count("T") == 100_000
        assert catalog.n_pages("T") > 0
        assert catalog.table("T").name == "T"
        assert catalog.index("I_A").clustered
        assert catalog.clustered_index("T").name == "I_A"
        assert catalog.table_names() == ("T",)
        assert len(catalog.indexes_on("T")) == 1
        assert catalog.indexes_with_leading_column("T", "A")[0].name == "I_A"

    def test_distinct_values_with_default(self):
        catalog = _catalog()
        assert catalog.distinct_values("T", "A") == 100_000
        # Column without stats falls back to table cardinality.
        assert catalog.distinct_values("T", "B") == 100_000

    def test_missing_stats_rejected(self):
        stats = CatalogStats()  # empty
        with pytest.raises(ValueError, match="missing statistics"):
            Catalog(_schema(), stats)

    def test_unknown_names_raise(self):
        catalog = _catalog()
        with pytest.raises(KeyError):
            catalog.table_stats("NOPE")
        with pytest.raises(KeyError):
            catalog.index_stats("NOPE")
        with pytest.raises(KeyError):
            catalog.column_stats("T", "NOPE")
