"""Golden default-cost plans for the 22 TPC-H queries.

Pins the optimizer's choices at the DB2-default cost vector under the
shared-device layout.  A change here is not necessarily a bug — the
cost model is ours, not DB2's — but it silently shifts every figure in
EXPERIMENTS.md, so it must be a conscious decision: update the
signature AND re-run the benchmark harness (the EXPERIMENTS.md tables)
when the plan space or cost formulas change.
"""

import pytest

from repro.catalog import build_tpch_catalog
from repro.optimizer import DEFAULT_PARAMETERS, optimize_scalar
from repro.storage import StorageLayout
from repro.workloads import build_tpch_queries

GOLDEN_PLANS = {
    "Q1": "SORT(GRPBY(TBSCAN(L)),L.L_RETURNFLAG+L.L_LINESTATUS)",
    "Q2": "SORT(HSJOIN(TBSCAN(R),HSJOIN(TBSCAN(N),HSJOIN(TBSCAN(S),NLJOIN(TBSCAN(P),IXPROBE(PS,PS_PK))))),S.S_ACCTBAL)",
    "Q3": "SORT(GRPBY(MSJOIN(SORT(HSJOIN(TBSCAN(C),TBSCAN(O)),O.O_ORDERKEY),IXSCAN(L,L_OK))),O.O_ORDERDATE)",
    "Q4": "SORT(GRPBY(HSJOIN(TBSCAN(O),TBSCAN(L))),O.O_ORDERPRIORITY)",
    "Q5": "SORT(GRPBY(HSJOIN(TBSCAN(R),HSJOIN(TBSCAN(N),HSJOIN(TBSCAN(S),MSJOIN(SORT(MSJOIN(SORT(TBSCAN(O),O.O_CUSTKEY),IXSCAN(C,C_PK)),O.O_ORDERKEY),IXSCAN(L,L_OK)))))),N.N_NAME)",
    "Q6": "TBSCAN(L)",
    # Q7/Q9 carry exact-cost ties (commuted hash-join builds; the
    # nation join and the PS index probe commute at identical total);
    # the pinned member is the one canonical sorted-alias enumeration
    # generates first.
    "Q7": "SORT(GRPBY(HSJOIN(TBSCAN(N2),MSJOIN(SORT(MSJOIN(SORT(HSJOIN(HSJOIN(TBSCAN(N1),TBSCAN(S)),TBSCAN(L)),L.L_ORDERKEY),IXSCAN(O,O_PK)),O.O_CUSTKEY),IXSCAN(C,C_PK)))),N1.N_NAME)",
    "Q8": "SORT(GRPBY(HSJOIN(TBSCAN(N2),HSJOIN(TBSCAN(S),HSJOIN(TBSCAN(R),HSJOIN(TBSCAN(N1),HSJOIN(HSJOIN(NLJOIN(TBSCAN(P),IXPROBE(L,L_PK_SK)),TBSCAN(O)),TBSCAN(C))))))),O.O_ORDERDATE)",
    "Q9": "SORT(GRPBY(HSJOIN(TBSCAN(N),NLJOIN(HSJOIN(TBSCAN(S),MSJOIN(SORT(HSJOIN(TBSCAN(P),TBSCAN(L)),L.L_ORDERKEY),IXSCAN(O,O_PK))),IXPROBE(PS,PS_PK,IXONLY)))),N.N_NAME)",
    "Q10": "SORT(GRPBY(HSJOIN(TBSCAN(N),HSJOIN(HSJOIN(TBSCAN(O),TBSCAN(L)),TBSCAN(C)))),C.C_ACCTBAL)",
    "Q11": "SORT(GRPBY(HSJOIN(NLJOIN(TBSCAN(N),TBSCAN(S)),TBSCAN(PS))),PS.PS_SUPPLYCOST)",
    "Q12": "SORT(GRPBY(HSJOIN(TBSCAN(L),IXSCAN(O,O_PK,IXONLY))),L.L_SHIPMODE)",
    "Q13": "SORT(GRPBY(NLJOIN(TBSCAN(O),IXPROBE(C,C_PK,IXONLY))),C.C_CUSTKEY)",
    "Q14": "HSJOIN(TBSCAN(L),IXSCAN(P,P_PK,IXONLY))",
    "Q15": "SORT(GRPBY(HSJOIN(IXSCAN(S,S_PK,IXONLY),TBSCAN(L))),S.S_SUPPKEY)",
    "Q16": "SORT(GRPBY(HSJOIN(TBSCAN(P),IXSCAN(PS,PS_PK,IXONLY))),P.P_BRAND)",
    "Q17": "NLJOIN(TBSCAN(P),IXPROBE(L,L_PK_SK))",
    "Q18": "SORT(GRPBY(NLJOIN(NLJOIN(TBSCAN(O),IXPROBE(C,C_PK,IXONLY)),IXPROBE(L,L_PK,IXONLY))),O.O_TOTALPRICE)",
    "Q19": "HSJOIN(TBSCAN(P),TBSCAN(L))",
    "Q20": "SORT(NLJOIN(HSJOIN(TBSCAN(N),HSJOIN(TBSCAN(S),HSJOIN(TBSCAN(P),IXSCAN(PS,PS_PK,IXONLY)))),IXPROBE(L,L_PK_SK)),S.S_NAME)",
    "Q21": "SORT(GRPBY(MSJOIN(MSJOIN(SORT(HSJOIN(NLJOIN(TBSCAN(N),TBSCAN(S)),TBSCAN(L1)),L1.L_ORDERKEY),IXSCAN(O,O_PK)),IXSCAN(L2,L_OK,IXONLY))),S.S_NAME)",
    "Q22": "SORT(GRPBY(HSJOIN(TBSCAN(C),IXSCAN(O,O_CK,IXONLY))),C.C_PHONE)",
}


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def queries(catalog):
    return build_tpch_queries(catalog)


@pytest.mark.parametrize("name", sorted(GOLDEN_PLANS))
def test_default_cost_plan_is_stable(catalog, queries, name):
    query = queries[name]
    layout = StorageLayout.shared_device(query.table_names())
    plan = optimize_scalar(
        query, catalog, DEFAULT_PARAMETERS, layout, layout.center_costs()
    )
    assert plan.signature == GOLDEN_PLANS[name]


def test_golden_plans_reflect_paper_narrative():
    """Spot-check plan shapes the paper discusses."""
    # Q20 filters PARTSUPP through its index before joining
    # (Section 8.1.1's description of the initial plan).
    assert "IXSCAN(PS,PS_PK" in GOLDEN_PLANS["Q20"]
    # Q19's default plan joins LINEITEM and PART with a hash join;
    # the INL alternative appears only when random I/O gets cheap
    # (Section 8.1.1).
    assert GOLDEN_PLANS["Q19"].startswith("HSJOIN")
    # Q1/Q6 are single-table plans.
    assert "JOIN" not in GOLDEN_PLANS["Q6"]
