"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_examples_directory_complete():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert scripts == [
        "autonomic_loop.py",
        "blackbox_characterization.py",
        "cost_model_validation.py",
        "quickstart.py",
        "storage_migration.py",
        "tpch_sensitivity.py",
    ]


def test_quickstart_runs():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "Worst-case global relative cost" in result.stdout
    assert "10000.00" in result.stdout  # Example 1 at delta=100


def test_tpch_sensitivity_runs_on_subset():
    result = _run("tpch_sensitivity.py")
    assert result.returncode == 0, result.stderr
    assert "Figure 5" in result.stdout
    assert "Figure 6" in result.stdout
    assert "Figure 7" in result.stdout


def test_blackbox_characterization_runs():
    result = _run(
        "blackbox_characterization.py", "--query", "Q14",
        "--delta", "50",
    )
    assert result.returncode == 0, result.stderr
    assert "usage-vector reconstruction" in result.stdout
    assert "complementarity census" in result.stdout


def test_storage_migration_runs():
    result = _run("storage_migration.py")
    assert result.returncode == 0, result.stderr
    assert "regret" in result.stdout
    assert "region-of-influence volume" in result.stdout


def test_cost_model_validation_runs():
    result = _run("cost_model_validation.py")
    assert result.returncode == 0, result.stderr
    assert "plan-level validation" in result.stdout
    assert "two-parameter" in result.stdout


def test_autonomic_loop_runs():
    result = _run("autonomic_loop.py")
    assert result.returncode == 0, result.stderr
    assert "stale regret" in result.stdout
    # During the rebuild the stale optimizer pays real regret.
    assert "(stale plan still optimal)" in result.stdout


def test_migration_rejects_bad_table():
    result = _run("storage_migration.py", "--table", "NOPE")
    assert result.returncode != 0
