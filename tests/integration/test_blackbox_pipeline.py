"""End-to-end black-box pipeline: discover -> estimate -> analyze.

Replays the paper's entire methodology against our optimizer through
the narrow interface only, then checks the conclusions against the
white-box ground truth.
"""

import numpy as np
import pytest

from repro.catalog import build_tpch_catalog
from repro.core.complementary import census
from repro.core.discovery import discover_candidate_plans
from repro.core.worstcase import worst_case_gtc
from repro.experiments.scenarios import scenario
from repro.optimizer import DEFAULT_PARAMETERS, candidate_plans
from repro.optimizer.blackbox import CandidateBackedBlackBox
from repro.workloads import tpch_query


@pytest.fixture(scope="module")
def pipeline():
    catalog = build_tpch_catalog(100)
    query = tpch_query("Q14", catalog)
    config = scenario("split")
    layout = config.layout_for(query)
    region = config.region(layout, 100.0)
    truth = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region, cell_cap=None
    )
    box = CandidateBackedBlackBox(truth)
    discovery = discover_candidate_plans(
        box,
        region,
        max_optimizer_calls=60000,
        rng=np.random.default_rng(0),
    )
    return truth, discovery, region, layout


def test_discovery_recovers_most_of_the_candidate_set(pipeline):
    truth, discovery, __, __ = pipeline
    found = set(discovery.witnesses)
    true_set = set(truth.signatures)
    assert found <= true_set  # nothing spurious
    assert len(found) >= max(2, int(0.6 * len(true_set)))


def test_estimated_usage_vectors_match_truth(pipeline):
    """Least squares through the narrow interface reproduces the
    white-box usage vectors (cf. the paper's <1% validation)."""
    truth, discovery, __, __ = pipeline
    for signature, estimate in discovery.plans.items():
        true_usage = next(
            p.usage for p in truth.plans if p.signature == signature
        )
        scale = max(float(true_usage.values.max()), 1e-9)
        error = float(
            np.max(np.abs(estimate.usage.values - true_usage.values))
        )
        assert error / scale < 0.01, signature


def test_blackbox_census_reaches_paper_conclusion(pipeline):
    """The Section 8.2 conclusion — split devices create complementary
    plans — is reachable from black-box data alone."""
    __, discovery, __, __ = pipeline
    estimated = [e.usage for e in discovery.plans.values()]
    if len(estimated) < 2:
        pytest.skip("discovery found fewer than 2 estimable plans")
    # Tolerance matters: estimated vectors carry least-squares noise.
    result = census(estimated, tol=1e-3)
    assert result.n_complementary > 0


def test_blackbox_worst_case_close_to_whitebox(pipeline):
    """Worst-case GTC computed from ESTIMATED usage vectors agrees
    with the white-box sweep (the paper's Figure-6 pipeline)."""
    truth, discovery, region, layout = pipeline
    center = region.center
    initial_index = truth.initial_plan_index()
    initial = truth.plans[initial_index]
    white = worst_case_gtc(initial.usage, truth.usages, region)
    estimated = [e.usage for e in discovery.plans.values()]
    initial_estimate = discovery.plans.get(initial.signature)
    if initial_estimate is None:
        pytest.skip("initial plan not re-estimated by discovery")
    black = worst_case_gtc(initial_estimate.usage, estimated, region)
    # Estimated curves may miss plans (making GTC look smaller) but
    # must stay within the white-box envelope and the right decade.
    assert black.gtc <= white.gtc * 1.05
    assert black.gtc >= white.gtc * 0.2
