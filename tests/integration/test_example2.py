"""Reproduction of the paper's Example 2 (Section 5.5).

A chain query T1 - T2 - T3, one million rows per table, join
selectivities 1e-8, with T1 on storage resource 1 and everything else
on resource 2.  Plan A scans T1 (reading all million tuples from
resource 1); plan B starts from T3 and probes T1's index (ten thousand
probes fetching ~100 tuples).  The ratio between the plans' resource-1
usage is then ~10^4, making the Theorem 2 constant bound vacuous in
practice.
"""

import math

import pytest

from repro.catalog.schema import Column, Index, Schema, Table
from repro.catalog.statistics import (
    Catalog,
    CatalogStats,
    ColumnStats,
    IndexStats,
    TableStats,
)
from repro.core.bounds import corollary_constant_bound
from repro.core.feasible import FeasibleRegion
from repro.optimizer import (
    DEFAULT_PARAMETERS,
    JoinPredicate,
    QuerySpec,
    TableRef,
    candidate_plans,
)
from repro.storage import StorageLayout


def _example2_catalog() -> Catalog:
    """Three 1M-row tables with PK and FK indexes.

    Rows are page-sized so tuple counts and page counts coincide — the
    example reasons in tuples ("plan A will read all one million
    tuples"), and this keeps the usage-vector ratio at the example's
    10^4 scale.
    """
    schema = Schema()
    stats = CatalogStats()
    rows = 1_000_000
    for name in ("T1", "T2", "T3"):
        table = Table(
            name,
            (
                Column("K", "integer", 4),
                Column("F", "integer", 4),
                Column("PAYLOAD", "char", 3892),
            ),
            primary_key=("K",),
        )
        schema.add_table(table)
        stats.tables[name] = TableStats(
            row_count=rows,
            row_width=3900,
            columns={
                "K": ColumnStats(n_distinct=rows),
                "F": ColumnStats(n_distinct=rows),
            },
        )
        pk = Index(f"{name}_PK", name, ("K",), clustered=True, unique=True)
        fk = Index(f"{name}_F", name, ("F",))
        schema.add_index(pk)
        schema.add_index(fk)
        stats.indexes[pk.name] = IndexStats.derive(rows, 4, 1.0)
        stats.indexes[fk.name] = IndexStats.derive(rows, 4, 0.0)
    return Catalog(schema, stats)


def _example2_query() -> QuerySpec:
    # The ORDER BY on T1's payload forces plans to fetch actual T1
    # tuples (the example's plans read/fetch tuples, not just keys).
    return QuerySpec(
        name="example2",
        tables=(
            TableRef("T1", "T1"),
            TableRef("T2", "T2"),
            TableRef("T3", "T3"),
        ),
        joins=(
            JoinPredicate("T1", "K", "T2", "F", selectivity=1e-8),
            JoinPredicate("T2", "K", "T3", "F", selectivity=1e-8),
        ),
        order_by=(("T1", "PAYLOAD"),),
    )


@pytest.fixture(scope="module")
def candidates():
    catalog = _example2_catalog()
    query = _example2_query()
    # The example puts table T1 on storage resource 1 and all other
    # tables AND ALL INDEXES on resource 2 — the split layout separates
    # T1's data device from its index device the same way.
    layout = StorageLayout.per_table_and_index(query.table_names())
    region = FeasibleRegion(
        layout.center_costs(), 100000.0, layout.variation_groups()
    )
    return candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region, cell_cap=None
    ), layout


def test_multiple_candidate_plans_exist(candidates):
    plan_set, __ = candidates
    assert len(plan_set) >= 2


def test_t1_usage_ratio_spans_orders_of_magnitude(candidates):
    """The heart of Example 2: corresponding usage elements of two
    candidate plans differ by ~10^4 on T1's resource."""
    plan_set, layout = candidates
    dim = layout.space.index("dev.table.T1")
    t1_usages = [plan.usage.values[dim] for plan in plan_set]
    positive = [u for u in t1_usages if u > 0]
    assert positive
    spread = max(positive) / min(positive)
    assert spread > 1_000  # the example's "quite large" ratio


def test_constant_bound_is_effectively_vacuous(candidates):
    """Theorem 2's bound exceeds 10^3 (or is infinite) — 'less and
    less meaningful' as the paper puts it."""
    plan_set, __ = candidates
    bound = corollary_constant_bound(plan_set.usages)
    assert bound > 1_000 or math.isinf(bound)


def test_scan_vs_probe_pair_matches_narrative(candidates):
    """There is a pair where one plan reads T1 wholesale and another
    touches it via index probes using >100x less of T1's device."""
    plan_set, layout = candidates
    dim = layout.space.index("dev.table.T1")
    scans = [
        p for p in plan_set.plans if "TBSCAN(T1)" in p.signature
    ]
    probes = [
        p
        for p in plan_set.plans
        if "IXPROBE(T1" in p.signature or "IXSCAN(T1" in p.signature
    ]
    assert scans and probes
    best_probe = min(p.usage.values[dim] for p in probes)
    heavy_scan = max(p.usage.values[dim] for p in scans)
    r_max = heavy_scan / max(best_probe, 1e-12)
    assert r_max > 100
