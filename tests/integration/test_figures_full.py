"""Full 22-query figure runs asserting the paper's headline claims.

This is the integration-level reproduction of Section 8.1's reading of
Figures 5-7 over the complete TPC-H workload (coarser delta grid than
the benchmark harness to keep runtime moderate).
"""

import pytest

from repro.catalog import build_tpch_catalog
from repro.experiments.worst_case import run_figure
from repro.workloads import build_tpch_queries

DELTAS = (1.0, 100.0, 10000.0)


@pytest.fixture(scope="module")
def figures():
    catalog = build_tpch_catalog(100)
    queries = build_tpch_queries(catalog)
    return {
        key: run_figure(key, catalog=catalog, queries=queries, deltas=DELTAS)
        for key in ("shared", "split", "colocated")
    }


def test_all_figures_cover_22_queries(figures):
    for result in figures.values():
        assert len(result.curves) == 22


def test_figure5_no_quadratic_growth(figures):
    """Sec 8.1.1: single device -> every curve bounded by a constant."""
    census = figures["shared"].growth_census()
    assert census.get("quadratic", 0) == 0


def test_figure6_majority_quadratic(figures):
    """Sec 8.1.2: 18 of 22 queries grew quadratically; we require a
    clear majority (the exact count depends on cost-model details)."""
    census = figures["split"].growth_census()
    assert census.get("quadratic", 0) >= 12


def test_figure7_strictly_between(figures):
    """Sec 8.1.3: results intermediate between Figures 5 and 6."""
    q5 = figures["shared"].growth_census().get("quadratic", 0)
    q7 = figures["colocated"].growth_census().get("quadratic", 0)
    q6 = figures["split"].growth_census().get("quadratic", 0)
    assert q5 <= q7 <= q6
    assert q7 < q6  # colocating indexes removes some sensitivity


def test_q20_among_most_sensitive_in_figure6(figures):
    """Sec 8.1.2 singles out query 20 as the most sensitive.  Our
    substrate's cost surface is not bit-identical to DB2's, so we
    assert the robust form: Q20 ranks in the top 5 of 22 and sits
    within a factor of 2 of the maximum."""
    result = figures["split"]
    ranked = sorted(result.curves, key=lambda c: -c.final_gtc)
    names = [curve.query_name for curve in ranked]
    assert names.index("Q20") < 5
    q20 = result.by_query()["Q20"].final_gtc
    assert q20 >= ranked[0].final_gtc / 2


def test_split_dominates_colocated_per_query(figures):
    """Every colocated cost vector is realizable in the split scenario
    (set a table's data and index multipliers equal), so worst-case
    GTC under 'split' dominates 'colocated' query by query.  No such
    nesting holds against 'shared' (it frees the seek/transfer ratio
    the locked scenarios fix), so the Figure-5 comparison is aggregate
    only (see the growth-census tests)."""
    split = figures["split"].by_query()
    colocated = figures["colocated"].by_query()
    for name, colocated_curve in colocated.items():
        if colocated_curve.truncated or split[name].truncated:
            continue  # truncated sets give lower bounds only
        assert (
            colocated_curve.final_gtc
            <= split[name].final_gtc * (1 + 1e-9)
        ), name


def test_theorem1_envelope(figures):
    for result in figures.values():
        for curve in result.curves:
            for point in curve.curve.points:
                assert point.gtc <= point.delta**2 * (1 + 1e-6)


def test_figure5_magnitudes_are_small_constants(figures):
    """Paper: 'within a factor of 5 of optimal' — our substrate's plan
    space is not bit-identical to DB2's, so we assert the same order of
    magnitude (every query below 100, most below 10)."""
    finals = sorted(
        curve.final_gtc for curve in figures["shared"].curves
    )
    assert finals[-1] < 100
    assert finals[len(finals) // 2] < 10  # median under 10


def test_figure6_magnitudes_reach_many_orders(figures):
    split = figures["split"]
    assert split.max_final_gtc() > 1e4
