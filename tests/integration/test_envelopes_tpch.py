"""Parametric envelopes on TPC-H: plan sequences along device rays.

Applies the 1-D lower-envelope analysis to real queries — the
one-dimensional version of the figures: as ONE device's cost drifts
from 1/delta to delta, which plans take turns being optimal, and do
the transitions match the black-box optimizer?
"""

import numpy as np
import pytest

from repro.catalog import build_tpch_catalog
from repro.core.envelope import lower_envelope
from repro.experiments.scenarios import scenario
from repro.optimizer import DEFAULT_PARAMETERS, candidate_plans
from repro.optimizer.blackbox import CandidateBackedBlackBox
from repro.workloads import tpch_query

DELTA = 10000.0


@pytest.fixture(scope="module")
def setup():
    catalog = build_tpch_catalog(100)
    query = tpch_query("Q20", catalog)
    config = scenario("split")
    layout = config.layout_for(query)
    region = config.region(layout, DELTA)
    candidates = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region, cell_cap=64
    )
    groups = {g.name: g for g in config.groups_for(layout)}
    return layout, region, candidates, groups


def test_partsupp_index_ray_has_multiple_plans(setup):
    """The paper's Q20 narrative: the plan flips as the PARTSUPP index
    device degrades, so the envelope along that ray has >= 2 pieces."""
    layout, __, candidates, groups = setup
    envelope = lower_envelope(
        candidates.usages,
        layout.center_costs(),
        groups["dev.index.PARTSUPP"],
        1.0 / DELTA,
        DELTA,
    )
    assert len(envelope) >= 2
    assert len(envelope.breakpoints) == len(envelope) - 1


def test_envelope_matches_blackbox_along_ray(setup):
    """Every sampled point on the ray: the envelope's owner has the
    same cost as the black-box optimizer's choice."""
    layout, __, candidates, groups = setup
    group = groups["dev.index.PARTSUPP"]
    envelope = lower_envelope(
        candidates.usages, layout.center_costs(), group,
        1.0 / DELTA, DELTA,
    )
    box = CandidateBackedBlackBox(candidates)
    center = layout.center_costs()
    for m in np.logspace(-3.9, 3.9, 23):
        values = center.values.copy()
        for index in group.indices:
            values[index] *= float(m)
        from repro.core.vectors import CostVector

        cost = CostVector(center.space, values)
        owner = envelope.plan_at(float(m))
        owner_cost = candidates.usages[owner].dot(cost)
        assert owner_cost == pytest.approx(
            box.optimize(cost).total_cost, rel=1e-9
        )


def test_cpu_ray_is_usually_stable(setup):
    """CPU cost drift rarely flips plans (all plans burn similar CPU) —
    the envelope along the cpu ray has few pieces."""
    layout, __, candidates, groups = setup
    envelope = lower_envelope(
        candidates.usages, layout.center_costs(), groups["cpu"],
        1.0 / DELTA, DELTA,
    )
    assert len(envelope) <= 4


def test_piece_count_bounded_by_candidates(setup):
    layout, __, candidates, groups = setup
    for group in groups.values():
        envelope = lower_envelope(
            candidates.usages, layout.center_costs(), group,
            1.0 / DELTA, DELTA,
        )
        assert len(envelope) <= len(candidates)
