"""Tests for repro.core.worstcase (Observation 2, Figures 5-7 machinery)."""

import numpy as np
import pytest

from repro.core.costmodel import global_relative_cost, optimal_plan_index
from repro.core.feasible import FeasibleRegion, VariationGroup
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector
from repro.core.worstcase import worst_case_curve, worst_case_gtc

SPACE = ResourceSpace.from_names(["r1", "r2"])
CENTER = CostVector(SPACE, [1.0, 1.0])


def _usage(*values):
    return UsageVector(SPACE, list(values))


def test_example1_reaches_delta_squared():
    """Complementary plans hit the Theorem 1 bound exactly."""
    a = _usage(1, 0)
    b = _usage(0, 1)
    candidates = [a, b]
    for delta in (2.0, 10.0, 100.0):
        region = FeasibleRegion(CENTER, delta)
        point = worst_case_gtc(a, candidates, region)
        assert point.gtc == pytest.approx(delta**2)


def test_non_complementary_plans_hit_constant_bound():
    """Theorem 2: worst GTC plateaus at r_max regardless of delta."""
    a = _usage(2, 8)
    b = _usage(1, 2)  # r_max(a,b) = 4
    candidates = [a, b]
    for delta in (10.0, 100.0, 10000.0):
        point = worst_case_gtc(a, candidates, FeasibleRegion(CENTER, delta))
        assert point.gtc <= 4.0 + 1e-9
    big = worst_case_gtc(a, candidates, FeasibleRegion(CENTER, 1e6))
    assert big.gtc == pytest.approx(4.0, rel=1e-3)


def test_optimal_initial_plan_has_gtc_one_at_delta_one():
    plans = [_usage(1, 3), _usage(3, 1), _usage(1.8, 1.8)]
    initial = plans[optimal_plan_index(plans, CENTER)]
    point = worst_case_gtc(initial, plans, FeasibleRegion(CENTER, 1.0))
    assert point.gtc == pytest.approx(1.0)


def test_vertex_sweep_matches_random_search():
    """Observation 2: no interior point beats the best vertex."""
    rng = np.random.default_rng(23)
    plans = [_usage(1, 6), _usage(6, 1), _usage(2.5, 2.5)]
    initial = plans[0]
    region = FeasibleRegion(CENTER, 30.0)
    vertex_best = worst_case_gtc(initial, plans, region).gtc
    random_best = max(
        global_relative_cost(initial, plans, cost)
        for cost in region.sample(rng, 3000)
    )
    assert random_best <= vertex_best * (1 + 1e-9)


def test_worst_cost_vector_reproduces_gtc():
    plans = [_usage(1, 6), _usage(6, 1)]
    region = FeasibleRegion(CENTER, 12.0)
    point = worst_case_gtc(plans[0], plans, region)
    recomputed = global_relative_cost(plans[0], plans, point.worst_cost)
    assert recomputed == pytest.approx(point.gtc)


def test_batched_sweep_invariant_to_batch_size():
    plans = [_usage(1, 9), _usage(9, 1), _usage(3, 3)]
    region = FeasibleRegion(CENTER, 50.0)
    a = worst_case_gtc(plans[0], plans, region, batch_size=1)
    b = worst_case_gtc(plans[0], plans, region, batch_size=1024)
    assert a.gtc == pytest.approx(b.gtc)
    assert a.vertex_id == b.vertex_id


def test_grouped_region_cannot_create_error():
    """Observation 1 corollary: one multiplier for ALL dims -> GTC 1."""
    plans = [_usage(1, 5), _usage(5, 1), _usage(2, 2)]
    groups = (VariationGroup("all", (0, 1)),)
    initial = plans[optimal_plan_index(plans, CENTER)]
    region = FeasibleRegion(CENTER, 10000.0, groups)
    point = worst_case_gtc(initial, plans, region)
    assert point.gtc == pytest.approx(1.0)


def test_curve_is_monotone_in_delta():
    plans = [_usage(1, 7), _usage(7, 1), _usage(2.4, 2.4)]
    initial = plans[optimal_plan_index(plans, CENTER)]
    curve = worst_case_curve(
        initial,
        plans,
        FeasibleRegion(CENTER, 1.0),
        deltas=[1.0, 2.0, 5.0, 10.0, 100.0, 1000.0],
        label="toy",
    )
    gtcs = curve.gtcs
    assert all(b >= a - 1e-12 for a, b in zip(gtcs, gtcs[1:]))
    assert curve.deltas == (1.0, 2.0, 5.0, 10.0, 100.0, 1000.0)


def test_curve_plateau_classification():
    # Non-complementary pair: plateaus (Theorem 2 / Figure 5 regime).
    flat = worst_case_curve(
        _usage(2, 8),
        [_usage(2, 8), _usage(1, 2)],
        FeasibleRegion(CENTER, 1.0),
        deltas=[10.0, 100.0, 1000.0, 10000.0],
    )
    assert flat.is_bounded()
    # Complementary pair: quadratic growth (Figure 6 regime).
    growing = worst_case_curve(
        _usage(1, 0),
        [_usage(1, 0), _usage(0, 1)],
        FeasibleRegion(CENTER, 1.0),
        deltas=[10.0, 100.0, 1000.0],
    )
    assert not growing.is_bounded()
    assert growing.final_gtc() == pytest.approx(1e6)
