"""Tests for repro.core.candidates."""

import numpy as np
import pytest

from repro.core.candidates import (
    candidate_optimal_indices,
    is_candidate_optimal,
    pareto_undominated_indices,
    region_of_influence_margin,
    witness_cost_vector,
)
from repro.core.feasible import FeasibleRegion, VariationGroup
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["r1", "r2"])
CENTER = CostVector(SPACE, [1.0, 1.0])


def _usage(*values):
    return UsageVector(SPACE, list(values))


def _region(delta=100.0, groups=None):
    return FeasibleRegion(CENTER, delta, groups)


class TestParetoFilter:
    def test_dominated_plan_removed(self):
        plans = [_usage(1, 1), _usage(2, 2)]
        assert pareto_undominated_indices(plans) == [0]

    def test_incomparable_plans_kept(self):
        plans = [_usage(1, 3), _usage(3, 1)]
        assert pareto_undominated_indices(plans) == [0, 1]

    def test_duplicates_keep_first(self):
        plans = [_usage(1, 1), _usage(1, 1), _usage(0.5, 3)]
        assert pareto_undominated_indices(plans) == [0, 2]

    def test_figure3_shape(self):
        """The Figure 3 scenario: A1 and A5 dominated, rest kept."""
        a1 = _usage(2, 5)
        a2 = _usage(1, 4)
        a3 = _usage(2.5, 2.5)
        a4 = _usage(4, 1)
        a5 = _usage(5, 3)
        plans = [a1, a2, a3, a4, a5]
        # a1 in Q_{a2}; a5 in Q_{a4} (5>=4, 3>=1).
        assert pareto_undominated_indices(plans) == [1, 2, 3]

    def test_tolerance_merges_near_duplicates(self):
        plans = [_usage(1, 1), _usage(1 + 1e-12, 1)]
        assert pareto_undominated_indices(plans, tol=1e-9) == [0]

    def test_accepts_raw_matrix(self):
        matrix = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert pareto_undominated_indices(matrix) == [0]


class TestCandidateOptimal:
    def test_extreme_plans_are_candidates(self):
        plans = [_usage(1, 10), _usage(10, 1)]
        region = _region()
        assert is_candidate_optimal(0, plans, region)
        assert is_candidate_optimal(1, plans, region)

    def test_plan_above_lower_hull_is_not_candidate(self):
        # (6,6) is above the segment joining (1,10) and (10,1); it is
        # undominated componentwise but never optimal.
        plans = [_usage(1, 10), _usage(10, 1), _usage(6, 6)]
        region = _region()
        assert pareto_undominated_indices(plans) == [0, 1, 2]
        assert not is_candidate_optimal(2, plans, region)

    def test_plan_on_lower_hull_is_candidate(self):
        # (5,5) is below that segment: candidate.
        plans = [_usage(1, 10), _usage(10, 1), _usage(5, 5)]
        assert is_candidate_optimal(2, plans, _region())

    def test_narrow_region_excludes_far_plans(self):
        # With delta=1 (a single cost point) only the plan optimal at
        # the center (1,1) is a candidate: (5,5) costs 10, others 11.
        plans = [_usage(1, 10), _usage(10, 1), _usage(5, 5)]
        region = _region(delta=1.0)
        assert candidate_optimal_indices(plans, region) == [2]

    def test_candidate_set_grows_with_delta(self):
        plans = [_usage(1, 10), _usage(10, 1), _usage(5, 5)]
        small = set(candidate_optimal_indices(plans, _region(delta=1.2)))
        large = set(candidate_optimal_indices(plans, _region(delta=100)))
        assert small <= large
        assert large == {0, 1, 2}

    def test_witness_really_makes_plan_optimal(self):
        plans = [_usage(1, 10), _usage(10, 1), _usage(5, 5)]
        region = _region()
        for index in candidate_optimal_indices(plans, region):
            witness = witness_cost_vector(index, plans, region)
            assert witness is not None
            totals = [p.dot(witness) for p in plans]
            assert totals[index] == pytest.approx(min(totals), rel=1e-9)
            assert region.contains(witness, rel_tol=1e-6)

    def test_exact_backend_agrees(self):
        plans = [_usage(1, 10), _usage(10, 1), _usage(6, 6), _usage(5, 5)]
        region = _region()
        fast = candidate_optimal_indices(plans, region)
        exact = candidate_optimal_indices(plans, region, exact=True)
        assert fast == exact == [0, 1, 3]

    def test_grouped_region_constrains_witness(self):
        # Lock both dimensions together: costs can only scale jointly,
        # which by Observation 1 never changes relative costs -> only
        # the center-optimal plan is candidate.
        plans = [_usage(1, 10), _usage(10, 1), _usage(4, 4)]
        groups = (VariationGroup("all", (0, 1)),)
        region = FeasibleRegion(CENTER, 1000.0, groups)
        assert candidate_optimal_indices(plans, region) == [2]


class TestInfluenceMargin:
    def test_margin_positive_for_interior_winner(self):
        plans = [_usage(1, 10), _usage(10, 1)]
        margin = region_of_influence_margin(0, plans, _region())
        assert margin is not None and margin > 0

    def test_margin_none_for_non_candidate(self):
        plans = [_usage(1, 10), _usage(10, 1), _usage(6, 6)]
        assert region_of_influence_margin(2, plans, _region()) is None

    def test_margin_zero_for_boundary_only_plan(self):
        # Duplicate of a candidate ties everywhere with it: margin 0.
        plans = [_usage(1, 10), _usage(1, 10)]
        margin = region_of_influence_margin(0, plans, _region())
        assert margin == pytest.approx(0.0, abs=1e-9)
