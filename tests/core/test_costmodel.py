"""Tests for repro.core.costmodel."""

import numpy as np
import pytest

from repro.core.costmodel import (
    global_relative_cost,
    optimal_plan,
    optimal_plan_index,
    relative_total_cost,
    total_cost,
    usage_matrix,
)
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["r1", "r2"])


def _usage(*values):
    return UsageVector(SPACE, list(values))


def _cost(*values):
    return CostVector(SPACE, list(values))


def test_total_cost_matches_dot():
    assert total_cost(_usage(2, 3), _cost(5, 7)) == pytest.approx(31)


def test_relative_total_cost_definition():
    a = _usage(1, 0)
    b = _usage(0, 1)
    assert relative_total_cost(a, b, _cost(1, 1)) == pytest.approx(1.0)
    assert relative_total_cost(a, b, _cost(2, 1)) == pytest.approx(2.0)


def test_relative_cost_of_zero_plan_raises():
    zero = _usage(0, 0)
    with pytest.raises(ZeroDivisionError):
        relative_total_cost(_usage(1, 1), zero, _cost(1, 1))


def test_observation_1_scale_invariance():
    """T_rel(a, b, kC) == T_rel(a, b, C) for any k > 0."""
    rng = np.random.default_rng(7)
    for _ in range(50):
        a = _usage(*rng.uniform(0, 10, 2))
        b = _usage(*(rng.uniform(0.1, 10, 2)))
        c = _cost(*rng.uniform(0.1, 10, 2))
        k = rng.uniform(0.01, 100)
        assert relative_total_cost(a, b, c) == pytest.approx(
            relative_total_cost(a, b, c.scaled(k))
        )


def test_optimal_plan_index_breaks_ties_low():
    plans = [_usage(1, 1), _usage(1, 1), _usage(2, 2)]
    assert optimal_plan_index(plans, _cost(1, 1)) == 0


def test_optimal_plan_changes_with_costs():
    seek_heavy = _usage(10, 1)
    xfer_heavy = _usage(1, 10)
    plans = [seek_heavy, xfer_heavy]
    assert optimal_plan(plans, _cost(1, 100)) is seek_heavy
    assert optimal_plan(plans, _cost(100, 1)) is xfer_heavy


def test_global_relative_cost_is_one_for_optimal_plan():
    plans = [_usage(1, 2), _usage(2, 1)]
    cost = _cost(1, 10)
    best = optimal_plan(plans, cost)
    assert global_relative_cost(best, plans, cost) == pytest.approx(1.0)


def test_global_relative_cost_at_least_one_for_candidates():
    plans = [_usage(1, 2), _usage(2, 1), _usage(1.4, 1.4)]
    cost = _cost(3, 1)
    for plan in plans:
        assert global_relative_cost(plan, plans, cost) >= 1.0 - 1e-12


def test_global_relative_cost_below_one_signals_missing_candidate():
    candidates = [_usage(2, 2)]
    cheaper = _usage(1, 1)
    assert global_relative_cost(cheaper, candidates, _cost(1, 1)) < 1.0


def test_usage_matrix_shape_and_space_check():
    plans = [_usage(1, 2), _usage(3, 4)]
    matrix = usage_matrix(plans)
    assert matrix.shape == (2, 2)
    assert matrix.tolist() == [[1, 2], [3, 4]]
    with pytest.raises(ValueError):
        usage_matrix([])


def test_usage_matrix_rejects_mixed_spaces():
    other = ResourceSpace.from_names(["x", "y"])
    with pytest.raises(Exception):
        usage_matrix([_usage(1, 2), UsageVector(other, [1, 2])])
