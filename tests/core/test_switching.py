"""Tests for per-parameter switching distances."""

import math

import numpy as np
import pytest

from repro.core.costmodel import optimal_plan_index
from repro.core.feasible import VariationGroup
from repro.core.resources import ResourceSpace
from repro.core.switching import switching_distance, switching_distances
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["r1", "r2"])
CENTER = CostVector(SPACE, [1.0, 1.0])
G1 = VariationGroup("r1", (0,))
G2 = VariationGroup("r2", (1,))


def _usage(*values):
    return UsageVector(SPACE, list(values))


class TestClosedForm:
    def test_simple_crossing(self):
        # Initial (1, 2) costs 3; rival (2, 1) costs 3*... at center:
        # initial = 3, rival = 3 -> tie; use a clear case instead.
        plans = [_usage(1, 2), _usage(3, 1)]
        # center totals: 3 vs 4: plan 0 optimal.
        # Raise r2 by m: T0 = 1 + 2m, T1 = 3 + m; cross at m = 2.
        result = switching_distance(0, plans, CENTER, G2)
        assert result.up_factor == pytest.approx(2.0)
        assert result.up_plan_index == 1
        # Lowering r2 only helps plan 0 (it uses more r2): no switch.
        assert result.down_factor == 0.0

    def test_down_crossing(self):
        plans = [_usage(1, 2), _usage(3, 1)]
        # Vary r1 by m: T0 = 2 + m, T1 = 1 + 3m; plan 1 wins for
        # m < 1/2.
        result = switching_distance(0, plans, CENTER, G1)
        assert result.down_factor == pytest.approx(0.5)
        assert result.down_plan_index == 1
        assert math.isinf(result.up_factor)

    def test_thresholds_verified_by_reoptimization(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            plans = [
                _usage(*rng.uniform(0.1, 10, 2)) for _ in range(5)
            ]
            initial = optimal_plan_index(plans, CENTER)
            for group, name in ((G1, "r1"), (G2, "r2")):
                result = switching_distance(initial, plans, CENTER, group)
                if not math.isinf(result.up_factor):
                    just_below = CENTER.perturbed(
                        {name: result.up_factor * 0.999}
                    )
                    just_above = CENTER.perturbed(
                        {name: result.up_factor * 1.001}
                    )
                    assert optimal_plan_index(plans, just_below) == initial
                    assert optimal_plan_index(plans, just_above) != initial
                if result.down_factor > 0:
                    inside = CENTER.perturbed(
                        {name: result.down_factor * 1.001}
                    )
                    outside = CENTER.perturbed(
                        {name: result.down_factor * 0.999}
                    )
                    assert optimal_plan_index(plans, inside) == initial
                    assert optimal_plan_index(plans, outside) != initial

    def test_stale_initial_plan_rejected(self):
        plans = [_usage(5, 5), _usage(1, 1)]
        with pytest.raises(ValueError, match="not optimal"):
            switching_distance(0, plans, CENTER, G1)

    def test_single_plan_never_switches(self):
        plans = [_usage(1, 2)]
        result = switching_distance(0, plans, CENTER, G1)
        assert result.insensitive
        assert math.isinf(result.robustness_radius)

    def test_tied_rival_switches_immediately(self):
        plans = [_usage(1, 2), _usage(2, 1)]  # tie at center (3 = 3)
        result = switching_distance(0, plans, CENTER, G2)
        # The rival uses less r2, so any increase hands it the win.
        assert result.up_factor == pytest.approx(1.0)

    def test_parallel_plans_never_cross(self):
        plans = [_usage(1, 2), _usage(2, 2)]  # same r2 usage
        result = switching_distance(0, plans, CENTER, G2)
        assert result.insensitive


class TestRobustnessRadius:
    def test_radius_is_worse_direction(self):
        plans = [_usage(1, 2), _usage(3, 1), _usage(0.4, 4)]
        initial = optimal_plan_index(plans, CENTER)
        result = switching_distance(initial, plans, CENTER, G2)
        expected = min(
            result.up_factor,
            math.inf if result.down_factor == 0 else 1 / result.down_factor,
        )
        assert result.robustness_radius == pytest.approx(expected)

    def test_grouped_dimensions_move_together(self):
        both = VariationGroup("all", (0, 1))
        plans = [_usage(1, 2), _usage(3, 1)]
        # Scaling ALL dims never changes relative order (Observation 1).
        result = switching_distance(0, plans, CENTER, both)
        assert result.insensitive


def test_switching_distances_covers_all_groups():
    plans = [_usage(1, 2), _usage(3, 1)]
    results = switching_distances(0, plans, CENTER, (G1, G2))
    assert [r.group for r in results] == ["r1", "r2"]
