"""Tests for repro.core.estimation (Section 6.1.1)."""

import numpy as np
import pytest

from repro.core.blackbox import TabularBlackBox
from repro.core.estimation import (
    collect_plan_samples,
    estimate_usage_vector,
    gaussian_solve,
    least_squares_usage,
    validate_estimate,
)
from repro.core.feasible import FeasibleRegion
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["cpu", "seek", "xfer"])
CENTER = CostVector(SPACE, [1.0, 24.1, 9.0])


class TestGaussianSolve:
    def test_solves_known_system(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([5.0, 10.0])
        x = gaussian_solve(a, b)
        assert a @ x == pytest.approx(b)

    def test_partial_pivoting_handles_zero_pivot(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        b = np.array([2.0, 3.0])
        assert gaussian_solve(a, b) == pytest.approx([3.0, 2.0])

    def test_singular_matrix_raises(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(np.linalg.LinAlgError):
            gaussian_solve(a, np.array([1.0, 2.0]))

    def test_agrees_with_numpy_on_random_systems(self):
        rng = np.random.default_rng(31)
        for _ in range(30):
            n = int(rng.integers(1, 7))
            a = rng.normal(size=(n, n)) + np.eye(n) * 3
            b = rng.normal(size=n)
            assert gaussian_solve(a, b) == pytest.approx(
                np.linalg.solve(a, b)
            )

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            gaussian_solve(np.ones((2, 3)), np.ones(2))


class TestLeastSquares:
    def test_exact_recovery_from_clean_samples(self):
        truth = UsageVector(SPACE, [100.0, 50.0, 2000.0])
        rng = np.random.default_rng(37)
        samples = []
        for _ in range(2 * SPACE.dimension):
            cost = CostVector(SPACE, rng.uniform(0.5, 50.0, 3))
            samples.append((cost, truth.dot(cost)))
        estimate = least_squares_usage(SPACE, samples)
        assert estimate.values == pytest.approx(truth.values, rel=1e-9)

    def test_recovery_under_quantization_noise(self):
        truth = UsageVector(SPACE, [100.0, 50.0, 2000.0])
        rng = np.random.default_rng(41)
        samples = []
        for _ in range(10 * SPACE.dimension):
            cost = CostVector(SPACE, rng.uniform(0.5, 50.0, 3))
            noisy = truth.dot(cost) * (1 + rng.uniform(-1e-3, 1e-3))
            samples.append((cost, noisy))
        estimate = least_squares_usage(SPACE, samples)
        assert estimate.values == pytest.approx(truth.values, rel=0.05)

    def test_too_few_samples_rejected(self):
        cost = CostVector(SPACE, [1, 1, 1])
        with pytest.raises(ValueError, match="at least"):
            least_squares_usage(SPACE, [(cost, 1.0)] * 2)

    def test_degenerate_samples_fall_back_to_lstsq(self):
        # All samples identical: normal matrix singular, minimum-norm
        # solution still returned and non-negative.
        cost = CostVector(SPACE, [1.0, 1.0, 1.0])
        samples = [(cost, 3.0)] * 6
        estimate = least_squares_usage(SPACE, samples)
        assert estimate.dot(cost) == pytest.approx(3.0)

    def test_negative_clipping(self):
        # Construct samples consistent with a slightly negative
        # component; clipping must zero it.
        rng = np.random.default_rng(43)
        raw = np.array([10.0, -1e-9, 5.0])
        samples = []
        for _ in range(6):
            values = rng.uniform(0.5, 5.0, 3)
            cost = CostVector(SPACE, values)
            samples.append((cost, float(raw @ values)))
        estimate = least_squares_usage(SPACE, samples)
        assert estimate["seek"] == 0.0


class TestBlackBoxSampling:
    def _black_box(self):
        plans = [
            ("seek-light", UsageVector(SPACE, [1000.0, 10.0, 5000.0])),
            ("seek-heavy", UsageVector(SPACE, [500.0, 5000.0, 100.0])),
        ]
        return TabularBlackBox(plans)

    def test_collect_samples_stay_on_plan(self):
        box = self._black_box()
        region = FeasibleRegion(CENTER, 100.0)
        choice = box.optimize(CENTER)
        samples = collect_plan_samples(
            box, choice.signature, CENTER, region,
            rng=np.random.default_rng(1),
        )
        assert len(samples) >= 2 * SPACE.dimension
        for cost, total in samples:
            again = box.optimize(cost)
            assert again.signature == choice.signature
            assert again.total_cost == pytest.approx(total)

    def test_wrong_seed_plan_rejected(self):
        box = self._black_box()
        region = FeasibleRegion(CENTER, 100.0)
        with pytest.raises(ValueError, match="not optimal at the seed"):
            collect_plan_samples(box, "no-such-plan", CENTER, region)

    def test_estimate_usage_vector_end_to_end(self):
        box = self._black_box()
        region = FeasibleRegion(CENTER, 100.0)
        choice = box.optimize(CENTER)
        estimate = estimate_usage_vector(
            box, choice.signature, CENTER, region,
            rng=np.random.default_rng(2),
        )
        truth = box.usage_of(choice.signature)
        assert estimate.usage.values == pytest.approx(
            truth.values, rel=1e-6
        )
        assert estimate.optimizer_calls > 0

    def test_validation_error_below_one_percent(self):
        """The paper's validation criterion (Section 6.1.1)."""
        box = self._black_box()
        region = FeasibleRegion(CENTER, 100.0)
        choice = box.optimize(CENTER)
        estimate = estimate_usage_vector(
            box, choice.signature, CENTER, region,
            rng=np.random.default_rng(3),
        )
        truth = box.usage_of(choice.signature)
        rng = np.random.default_rng(4)
        test_costs = region.sample(rng, 50)
        error = validate_estimate(
            estimate.usage, lambda c: truth.dot(c), test_costs
        )
        assert error < 0.01


def test_validate_estimate_reports_worst_error():
    truth = UsageVector(SPACE, [1.0, 2.0, 3.0])
    off = UsageVector(SPACE, [1.1, 2.0, 3.0])
    costs = [CostVector(SPACE, [1, 1, 1]), CostVector(SPACE, [10, 1, 1])]
    error = validate_estimate(off, lambda c: truth.dot(c), costs)
    # Worst case is the cost vector weighting the wrong dimension most.
    assert error == pytest.approx(1.0 / 15.0)


class TestQuantizedBlackBox:
    """Estimation under DB2-style cost quantization (the reason the
    paper used at least m = 2n samples)."""

    def test_estimation_survives_quantization(self):
        truth = UsageVector(SPACE, [1000.0, 500.0, 20000.0])
        box = TabularBlackBox([("only", truth)], quantization=1e-4)
        region = FeasibleRegion(CENTER, 100.0)
        estimate = estimate_usage_vector(
            box, "only", CENTER, region,
            min_samples=6 * SPACE.dimension,
            rng=np.random.default_rng(9),
        )
        rng = np.random.default_rng(10)
        error = validate_estimate(
            estimate.usage,
            lambda c: truth.dot(c),
            region.sample(rng, 40),
        )
        # The paper's validation criterion under quantization noise.
        assert error < 0.01

    def test_more_samples_reduce_error(self):
        truth = UsageVector(SPACE, [1000.0, 500.0, 20000.0])
        region = FeasibleRegion(CENTER, 100.0)
        rng = np.random.default_rng(11)
        test_costs = region.sample(rng, 40)
        errors = []
        for factor in (2, 12):
            box = TabularBlackBox([("only", truth)], quantization=1e-3)
            estimate = estimate_usage_vector(
                box, "only", CENTER, region,
                min_samples=factor * SPACE.dimension,
                rng=np.random.default_rng(12),
            )
            errors.append(
                validate_estimate(
                    estimate.usage, lambda c: truth.dot(c), test_costs
                )
            )
        assert errors[1] <= errors[0] * 1.5  # not worse, usually better
