"""Tests for plan diagrams."""

import numpy as np
import pytest

from repro.core.costmodel import optimal_plan_index
from repro.core.diagram import plan_diagram
from repro.core.feasible import VariationGroup
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["r1", "r2", "r3"])
CENTER = CostVector(SPACE, [1.0, 1.0, 1.0])
GX = VariationGroup("r1", (0,))
GY = VariationGroup("r2", (1,))


def _usage(*values):
    return UsageVector(SPACE, list(values))


@pytest.fixture()
def plans():
    return [
        _usage(10, 1, 1),
        _usage(1, 10, 1),
        _usage(4, 4, 1),
    ]


def test_cells_match_pointwise_optimization(plans):
    diagram = plan_diagram(plans, CENTER, GX, GY, delta=50.0, resolution=9)
    for yi, my in enumerate(diagram.y_multipliers):
        for xi, mx in enumerate(diagram.x_multipliers):
            cost = CENTER.perturbed({"r1": mx, "r2": my})
            assert diagram.cells[yi, xi] == optimal_plan_index(plans, cost)


def test_every_candidate_claims_some_cells(plans):
    diagram = plan_diagram(plans, CENTER, GX, GY, delta=100.0,
                           resolution=33)
    assert set(diagram.plans_appearing) == {0, 1, 2}
    shares = [diagram.share(i) for i in range(3)]
    assert all(share > 0 for share in shares)
    assert sum(shares) == pytest.approx(1.0)


def test_dominated_plan_never_appears(plans):
    extra = plans + [_usage(11, 11, 2)]
    diagram = plan_diagram(extra, CENTER, GX, GY, delta=100.0)
    assert 3 not in diagram.plans_appearing


def test_regions_are_contiguous_blobs(plans):
    """Each plan's cells form one connected region (convexity of
    regions of influence restricted to a 2-D slice)."""
    diagram = plan_diagram(plans, CENTER, GX, GY, delta=100.0,
                           resolution=25)
    import networkx as nx

    for plan in diagram.plans_appearing:
        graph = nx.Graph()
        coords = list(zip(*np.nonzero(diagram.cells == plan)))
        graph.add_nodes_from(coords)
        for y, x in coords:
            for dy, dx in ((0, 1), (1, 0)):
                if (y + dy, x + dx) in graph:
                    graph.add_edge((y, x), (y + dy, x + dx))
        assert nx.number_connected_components(graph) == 1


def test_render_contains_legend_and_grid(plans):
    diagram = plan_diagram(
        plans, CENTER, GX, GY, delta=10.0, resolution=8,
        signatures=("scan", "probe", "hybrid"),
    )
    text = diagram.render()
    assert "scan" in text and "hybrid" in text
    grid_lines = [
        line for line in text.splitlines()
        if line and set(line) <= set("ABC")
    ]
    assert len(grid_lines) == 8


def test_validation():
    plans = [_usage(1, 1, 1)]
    with pytest.raises(ValueError, match="delta"):
        plan_diagram(plans, CENTER, GX, GY, delta=1.0)
    with pytest.raises(ValueError, match="resolution"):
        plan_diagram(plans, CENTER, GX, GY, resolution=1)
    with pytest.raises(ValueError, match="overlap"):
        plan_diagram(plans, CENTER, GX, VariationGroup("dup", (0,)))
    with pytest.raises(ValueError, match="at least one"):
        plan_diagram([], CENTER, GX, GY)


def test_grouped_axes_share_multiplier():
    space = ResourceSpace.from_names(["a", "b", "c", "d"])
    center = CostVector(space, [1, 1, 1, 1])
    plans = [
        UsageVector(space, [5, 5, 1, 1]),
        UsageVector(space, [1, 1, 5, 5]),
    ]
    diagram = plan_diagram(
        plans,
        center,
        VariationGroup("ab", (0, 1)),
        VariationGroup("cd", (2, 3)),
        delta=10.0,
        resolution=5,
    )
    # Corner where ab cheap, cd expensive: plan 0 (ab-heavy) wins.
    assert diagram.cells[-1, 0] == 0
    assert diagram.cells[0, -1] == 1
