"""The conic point-location index: activation, parity, fallbacks."""

import logging

import numpy as np
import pytest

from repro.core import planindex as planindex_module
from repro.core.feasible import FeasibleRegion
from repro.core.planindex import (
    PlanIndex,
    dense_owner_batch,
    plan_index_disabled,
    plan_index_min_plans,
)
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector
from repro.obs.metrics import METRICS


def _structured_matrix(rng, m, d, pool=24, pick=0.2):
    """Plans sharing subplan building blocks (realistic candidate sets)."""
    ops = np.exp(rng.normal(0.0, 1.0, size=(pool, d))) * (
        rng.random((pool, d)) < 0.5
    )
    picks = rng.random((m, pool)) < pick
    return picks @ ops + np.exp(rng.normal(-2.0, 0.5, size=(m, d)))


def _probes(rng, k, d):
    return np.exp(rng.uniform(-np.log(50.0), np.log(50.0), size=(k, d)))


# ----------------------------------------------------------------------
# Activation and environment knobs
# ----------------------------------------------------------------------
def test_inert_below_threshold_and_still_exact():
    rng = np.random.default_rng(0)
    matrix = _structured_matrix(rng, 8, 5)
    index = PlanIndex(matrix)  # default threshold is 64
    assert not index.active
    costs = _probes(rng, 40, 5)
    np.testing.assert_array_equal(
        index.owner_batch(costs), dense_owner_batch(matrix, costs)
    )


def test_min_plans_override_activates_small_sets():
    rng = np.random.default_rng(1)
    matrix = _structured_matrix(rng, 8, 5)
    index = PlanIndex(matrix, min_plans=1, witness_samples=128)
    assert index.active
    costs = _probes(rng, 40, 5)
    np.testing.assert_array_equal(
        index.owner_batch(costs), dense_owner_batch(matrix, costs)
    )


def test_env_var_disables_index(monkeypatch):
    rng = np.random.default_rng(2)
    matrix = _structured_matrix(rng, 128, 6)
    monkeypatch.setenv("REPRO_NO_PLAN_INDEX", "1")
    assert plan_index_disabled()
    assert not PlanIndex(matrix).active
    monkeypatch.setenv("REPRO_NO_PLAN_INDEX", "0")
    assert not plan_index_disabled()


def test_env_var_overrides_threshold(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_INDEX_MIN_PLANS", "3")
    assert plan_index_min_plans() == 3
    rng = np.random.default_rng(3)
    assert PlanIndex(_structured_matrix(rng, 4, 4),
                     witness_samples=64).active
    monkeypatch.setenv("REPRO_PLAN_INDEX_MIN_PLANS", "banana")
    assert plan_index_min_plans() == planindex_module.DEFAULT_MIN_PLANS


def test_rejects_empty_and_nonfinite_matrices():
    with pytest.raises(ValueError, match="nonempty"):
        PlanIndex(np.empty((0, 3)))
    with pytest.raises(ValueError, match="finite"):
        PlanIndex(np.array([[1.0, np.inf]]))


# ----------------------------------------------------------------------
# Exactness against the dense kernel
# ----------------------------------------------------------------------
def test_owner_batch_matches_dense_argmin_bitwise():
    rng = np.random.default_rng(4)
    matrix = _structured_matrix(rng, 400, 8)
    index = PlanIndex(matrix, witness_samples=512)
    assert index.active
    costs = _probes(rng, 2000, 8)
    np.testing.assert_array_equal(
        index.owner_batch(costs), dense_owner_batch(matrix, costs)
    )


def test_duplicate_rows_and_constant_columns_keep_tie_break():
    rng = np.random.default_rng(5)
    base = _structured_matrix(rng, 60, 5)
    # Duplicate a block of rows verbatim and add a constant column:
    # ties must resolve to the lowest index, exactly as np.argmin does.
    matrix = np.vstack([base, base[10:30]])
    matrix[:, 2] = 1.0
    index = PlanIndex(matrix, min_plans=1, witness_samples=256)
    costs = _probes(rng, 800, 5)
    np.testing.assert_array_equal(
        index.owner_batch(costs), dense_owner_batch(matrix, costs)
    )


def test_invalid_cost_rows_fall_back_to_dense():
    rng = np.random.default_rng(6)
    matrix = _structured_matrix(rng, 100, 4)
    index = PlanIndex(matrix, min_plans=1, witness_samples=256)
    costs = _probes(rng, 8, 4)
    costs[0] = 0.0                      # zero norm
    costs[1, 2] = -1.0                  # negative component
    costs[2, 0] = np.nan                # non-finite
    costs[3, 3] = np.inf
    before = index.stats["fallbacks"]
    np.testing.assert_array_equal(
        index.owner_batch(costs), dense_owner_batch(matrix, costs)
    )
    assert index.stats["fallbacks"] - before >= 4


def test_owner_accepts_cost_vectors_and_arrays():
    rng = np.random.default_rng(7)
    matrix = _structured_matrix(rng, 90, 4)
    index = PlanIndex(matrix, min_plans=1, witness_samples=256)
    space = ResourceSpace.from_names(["a", "b", "c", "d"])
    row = _probes(rng, 1, 4)[0]
    expected = int(dense_owner_batch(matrix, row[None])[0])
    assert index.owner(row) == expected
    assert index.owner(CostVector(space, row)) == expected


def test_region_seeded_build_matches_dense():
    space = ResourceSpace.from_names(["a", "b", "c"])
    region = FeasibleRegion(
        CostVector(space, np.array([1.0, 2.0, 0.5])), 100.0
    )
    rng = np.random.default_rng(8)
    matrix = _structured_matrix(rng, 150, 3)
    index = PlanIndex(matrix, region, witness_samples=256)
    assert index.active
    costs = region.sample_matrix(np.random.default_rng(9), 1500)
    np.testing.assert_array_equal(
        index.owner_batch(costs), dense_owner_batch(matrix, costs)
    )


def test_kdtree_free_path_is_exact(monkeypatch):
    rng = np.random.default_rng(10)
    matrix = _structured_matrix(rng, 120, 5)
    monkeypatch.setattr(planindex_module, "_KDTree", None)
    index = PlanIndex(matrix, witness_samples=256)
    assert index.active
    costs = _probes(rng, 600, 5)
    np.testing.assert_array_equal(
        index.owner_batch(costs), dense_owner_batch(matrix, costs)
    )


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------
def test_metrics_and_stats_are_recorded():
    METRICS.reset()
    rng = np.random.default_rng(11)
    matrix = _structured_matrix(rng, 256, 6)
    index = PlanIndex(matrix, witness_samples=256)
    costs = _probes(rng, 500, 6)
    index.owner_batch(costs)
    counters = METRICS.snapshot()["counters"]
    assert counters["planindex.builds"] == 1
    assert counters["planindex.probes"] == 500
    assert index.stats["probes"] == 500
    scanned = counters["planindex.leaf_visits"]
    pruned = counters["planindex.pruned"]
    assert scanned + pruned == 500 * 256
    assert pruned > 0  # the certificate must actually prune


def test_heavy_fallbacks_log_a_warning(caplog):
    rng = np.random.default_rng(12)
    matrix = _structured_matrix(rng, 80, 4)
    index = PlanIndex(matrix, min_plans=1, witness_samples=128)
    bad = np.full((40, 4), -1.0)  # every row invalid -> 100% fallback
    with caplog.at_level(logging.WARNING, logger="repro.core.planindex"):
        index.owner_batch(bad)
    assert any(
        "fell back" in record.getMessage() for record in caplog.records
    )
