"""Tests for repro.core.bounds (Theorems 1 and 2, Lemma 1, Example 1)."""

import math

import numpy as np
import pytest

from repro.core.bounds import (
    corollary_constant_bound,
    empirical_ratio_range,
    lemma1_holds,
    numpy_ratio_extremes,
    ratio_extremes,
    theorem1_interval,
    theorem1_plan_bound,
    theorem2_interval,
)
from repro.core.costmodel import relative_total_cost
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["r1", "r2"])


def _usage(*values):
    return UsageVector(SPACE, list(values))


def _cost(*values):
    return CostVector(SPACE, list(values))


class TestTheorem1:
    def test_interval_shape(self):
        low, high = theorem1_interval(gamma=2.0, delta=3.0)
        assert low == pytest.approx(2.0 / 9.0)
        assert high == pytest.approx(18.0)

    def test_plan_bound(self):
        assert theorem1_plan_bound(10.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            theorem1_plan_bound(0.5)

    def test_example_1_tightness(self):
        """Paper Example 1: A=(1,0), B=(0,1) reach exactly delta**2."""
        a = _usage(1, 0)
        b = _usage(0, 1)
        c1 = _cost(1, 1)
        assert relative_total_cost(a, b, c1) == pytest.approx(1.0)
        for delta in (2.0, 10.0, 100.0):
            c2 = _cost(delta, 1.0 / delta)
            observed = relative_total_cost(a, b, c2)
            assert observed == pytest.approx(delta**2)
            low, high = theorem1_interval(1.0, delta)
            assert low - 1e-12 <= observed <= high + 1e-9

    def test_random_perturbations_respect_bound(self):
        rng = np.random.default_rng(11)
        for _ in range(200):
            a = _usage(*rng.uniform(0, 10, 2))
            b = _usage(*rng.uniform(0.1, 10, 2))
            c = _cost(*rng.uniform(0.1, 10, 2))
            delta = rng.uniform(1.0, 50.0)
            gamma = relative_total_cost(a, b, c)
            factors = delta ** rng.uniform(-1, 1, 2)
            perturbed = c.perturbed(factors)
            observed = relative_total_cost(a, b, perturbed)
            low, high = theorem1_interval(gamma, delta)
            assert low * (1 - 1e-9) <= observed <= high * (1 + 1e-9)


class TestRatioExtremes:
    def test_plain_ratios(self):
        r_min, r_max = ratio_extremes(_usage(2, 8), _usage(1, 2))
        assert r_min == pytest.approx(2.0)
        assert r_max == pytest.approx(4.0)

    def test_complementary_gives_infinite_max(self):
        r_min, r_max = ratio_extremes(_usage(1, 1), _usage(0, 1))
        assert math.isinf(r_max)

    def test_complementary_gives_zero_min(self):
        r_min, __ = ratio_extremes(_usage(0, 1), _usage(1, 1))
        assert r_min == 0.0

    def test_shared_zero_dimension_skipped(self):
        r_min, r_max = ratio_extremes(_usage(0, 2), _usage(0, 1))
        assert (r_min, r_max) == (2.0, 2.0)

    def test_all_zero_degenerate(self):
        assert ratio_extremes(_usage(0, 0), _usage(0, 0)) == (1.0, 1.0)

    def test_numpy_version_agrees(self):
        rng = np.random.default_rng(5)
        rows_a = rng.uniform(0, 5, size=(40, 2))
        rows_a[rng.random((40, 2)) < 0.3] = 0.0
        rows_b = rng.uniform(0, 5, size=(40, 2))
        rows_b[rng.random((40, 2)) < 0.3] = 0.0
        r_min_v, r_max_v = numpy_ratio_extremes(rows_a, rows_b)
        for k in range(40):
            r_min, r_max = ratio_extremes(
                UsageVector(SPACE, rows_a[k]), UsageVector(SPACE, rows_b[k])
            )
            assert r_min_v[k] == pytest.approx(r_min)
            assert r_max_v[k] == pytest.approx(r_max)


class TestTheorem2:
    def test_relative_cost_always_within_interval(self):
        rng = np.random.default_rng(13)
        a = _usage(2, 8)
        b = _usage(1, 2)
        low, high = theorem2_interval(a, b)
        for _ in range(300):
            c = _cost(*rng.uniform(1e-3, 1e3, 2))
            observed = relative_total_cost(a, b, c)
            assert low * (1 - 1e-12) <= observed <= high * (1 + 1e-12)

    def test_bounds_are_approached_at_extremes(self):
        a = _usage(2, 8)
        b = _usage(1, 2)
        low, high = theorem2_interval(a, b)
        # Put all weight on the dimension with the extreme ratio.
        nearly_low = relative_total_cost(a, b, _cost(1e9, 1e-9))
        nearly_high = relative_total_cost(a, b, _cost(1e-9, 1e9))
        assert nearly_low == pytest.approx(low, rel=1e-6)
        assert nearly_high == pytest.approx(high, rel=1e-6)

    def test_complementary_pair_escapes_any_constant(self):
        a = _usage(1, 0)
        b = _usage(0, 1)
        observed = empirical_ratio_range(
            a, b, [_cost(10.0**k, 10.0**-k) for k in range(-6, 7)]
        )
        assert observed[1] / observed[0] > 1e10


class TestCorollary:
    def test_non_complementary_set_gets_finite_bound(self):
        plans = [_usage(1, 2), _usage(2, 1), _usage(1.5, 1.5)]
        bound = corollary_constant_bound(plans)
        assert math.isfinite(bound)
        assert bound == pytest.approx(2.0)

    def test_complementary_set_gets_infinite_bound(self):
        plans = [_usage(1, 0), _usage(0, 1)]
        assert math.isinf(corollary_constant_bound(plans))

    def test_bound_actually_bounds_gtc(self):
        rng = np.random.default_rng(17)
        plans = [_usage(1, 3), _usage(3, 1), _usage(2, 2)]
        bound = corollary_constant_bound(plans)
        for _ in range(200):
            c = _cost(*rng.uniform(1e-3, 1e3, 2))
            totals = [p.dot(c) for p in plans]
            gtc = max(totals) / min(totals)
            assert gtc <= bound * (1 + 1e-12)


class TestLemma1:
    def test_holds_on_valid_inputs(self):
        rng = np.random.default_rng(19)
        for _ in range(300):
            a1, b1, a2, b2 = rng.uniform(0.01, 10, 4)
            if a2 / b2 > a1 / b1:
                (a1, b1), (a2, b2) = (a2, b2), (a1, b1)
            c1, c2 = rng.uniform(0, 10, 2)
            assert lemma1_holds(a1, b1, a2, b2, c1, c2)

    def test_rejects_bad_preconditions(self):
        with pytest.raises(ValueError):
            lemma1_holds(0, 1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            lemma1_holds(1, 1, 1, 1, -1, 1)
        with pytest.raises(ValueError):
            lemma1_holds(1, 2, 2, 1, 1, 1)  # a2/b2 > a1/b1


def test_gamma_and_delta_validation():
    with pytest.raises(ValueError):
        theorem1_interval(-1.0, 2.0)
    with pytest.raises(ValueError):
        theorem1_interval(1.0, 0.9)
