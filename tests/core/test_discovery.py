"""Tests for repro.core.discovery (Section 6.2.1)."""

import numpy as np
import pytest

from repro.core.blackbox import TabularBlackBox
from repro.core.candidates import candidate_optimal_indices
from repro.core.discovery import discover_candidate_plans
from repro.core.feasible import FeasibleRegion, VariationGroup
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["cpu", "seek", "xfer"])
CENTER = CostVector(SPACE, [1.0, 24.1, 9.0])


def _plans():
    return [
        ("scan", UsageVector(SPACE, [1000.0, 10.0, 5000.0])),
        ("index", UsageVector(SPACE, [500.0, 5000.0, 100.0])),
        ("hybrid", UsageVector(SPACE, [400.0, 900.0, 1500.0])),
        # Never optimal anywhere (dominated by hybrid):
        ("bad", UsageVector(SPACE, [800.0, 1000.0, 2000.0])),
    ]


def test_discovers_exactly_the_candidate_set():
    box = TabularBlackBox(_plans())
    region = FeasibleRegion(CENTER, 100.0)
    result = discover_candidate_plans(
        box, region, rng=np.random.default_rng(0)
    )
    usages = [usage for __, usage in _plans()]
    truth = {
        _plans()[i][0]
        for i in candidate_optimal_indices(usages, region)
    }
    assert set(result.signatures) == truth
    assert "bad" not in result.signatures
    assert result.complete


def test_estimated_usages_match_ground_truth():
    box = TabularBlackBox(_plans())
    region = FeasibleRegion(CENTER, 100.0)
    result = discover_candidate_plans(
        box, region, rng=np.random.default_rng(1)
    )
    for signature, estimate in result.plans.items():
        truth = box.usage_of(signature)
        assert estimate.usage.values == pytest.approx(
            truth.values, rel=1e-4, abs=1e-6
        )


def test_witnesses_are_feasible_and_correct():
    box = TabularBlackBox(_plans())
    region = FeasibleRegion(CENTER, 50.0)
    result = discover_candidate_plans(
        box, region, rng=np.random.default_rng(2), estimate_usages=False
    )
    for signature, witness in result.witnesses.items():
        assert box.optimize(witness).signature == signature


def test_budget_exhaustion_marks_incomplete():
    box = TabularBlackBox(_plans())
    region = FeasibleRegion(CENTER, 100.0)
    result = discover_candidate_plans(
        box, region, max_optimizer_calls=5,
        rng=np.random.default_rng(3),
    )
    assert not result.complete
    assert result.optimizer_calls <= 5


def test_single_plan_settles_immediately():
    box = TabularBlackBox([("only", UsageVector(SPACE, [1.0, 1.0, 1.0]))])
    region = FeasibleRegion(CENTER, 1000.0)
    result = discover_candidate_plans(
        box, region, rng=np.random.default_rng(4)
    )
    assert result.signatures == ("only",)
    assert result.complete
    # One plan optimal at all 8 root vertices: a single settled box.
    assert result.boxes_examined == 1
    assert result.boxes_settled == 1


def test_grouped_region_discovery():
    # Lock seek and xfer together; in multiplier space this is 2-D.
    groups = (
        VariationGroup("cpu", (0,)),
        VariationGroup("disk", (1, 2)),
    )
    box = TabularBlackBox(_plans())
    region = FeasibleRegion(CENTER, 100.0, groups)
    result = discover_candidate_plans(
        box, region, rng=np.random.default_rng(5)
    )
    usages = [usage for __, usage in _plans()]
    truth = {
        _plans()[i][0]
        for i in candidate_optimal_indices(usages, region)
    }
    assert set(result.signatures) == truth


def test_thin_region_found_by_subdivision():
    """A plan whose region is a thin slice still gets discovered.

    The "middle" plan is only barely below the hull of the two extreme
    plans, so its region of influence is a narrow wedge that corner
    probes miss; subdivision must find it.
    """
    plans = [
        ("a", UsageVector(SPACE, [1.0, 100.0, 1.0])),
        ("b", UsageVector(SPACE, [1.0, 1.0, 100.0])),
        # Slightly below the a/b hull around the balanced point:
        ("mid", UsageVector(SPACE, [1.0, 49.0, 49.0])),
    ]
    box = TabularBlackBox(plans)
    center = CostVector(SPACE, [1.0, 1.0, 1.0])
    region = FeasibleRegion(center, 10.0)
    result = discover_candidate_plans(
        box, region, rng=np.random.default_rng(0), n_random_probes=0,
        max_depth=10,
    )
    assert "mid" in result.signatures


def test_call_budget_accounting_is_consistent():
    box = TabularBlackBox(_plans())
    region = FeasibleRegion(CENTER, 100.0)
    result = discover_candidate_plans(
        box, region, rng=np.random.default_rng(6)
    )
    assert result.optimizer_calls <= box.call_count
    assert result.boxes_settled <= result.boxes_examined


class _LoopOnly:
    """Hides ``optimize_batch``, forcing the per-point fallback."""

    def __init__(self, inner):
        self._inner = inner

    def optimize(self, cost):
        return self._inner.optimize(cost)

    @property
    def call_count(self):
        return self._inner.call_count


@pytest.mark.parametrize("budget", [20000, 60, 5])
@pytest.mark.parametrize("estimate", [False, True])
def test_batched_probing_equals_looped_probing(budget, estimate):
    """Vectorised probing must not change discovery in any way.

    Same plans, same witnesses, same call accounting, same box counts —
    at a generous budget, at a budget that cuts probing short, and with
    or without the estimation phase.
    """
    region = FeasibleRegion(CENTER, 100.0)
    results = []
    for wrap in (lambda box: box, _LoopOnly):
        box = TabularBlackBox(_plans())
        results.append(
            discover_candidate_plans(
                wrap(box),
                region,
                max_optimizer_calls=budget,
                rng=np.random.default_rng(8),
                estimate_usages=estimate,
            )
        )
    batched, looped = results
    assert batched.signatures == looped.signatures
    assert batched.optimizer_calls == looped.optimizer_calls
    assert batched.complete == looped.complete
    assert batched.boxes_examined == looped.boxes_examined
    assert batched.boxes_settled == looped.boxes_settled
    assert list(batched.witnesses) == list(looped.witnesses)
    for signature, witness in batched.witnesses.items():
        assert np.array_equal(
            witness.values, looped.witnesses[signature].values
        )
    for signature, plan in batched.plans.items():
        assert np.array_equal(
            plan.usage.values, looped.plans[signature].usage.values
        )


def test_probe_cache_merges_float_noise_duplicates():
    """Corners recomputed with last-bit noise must hit the probe cache."""
    from repro.core.discovery import _round_key

    base = 0.1 * np.sqrt(2.0)
    noisy = base * (1.0 + 2e-16)
    assert noisy != base  # genuinely different floats...
    assert _round_key([base, 7.0]) == _round_key([noisy, 7.0])
    # ...but honest differences survive rounding.
    assert _round_key([base, 7.0]) != _round_key([base * 1.001, 7.0])


def test_probe_cache_key_rounding_spans_magnitudes():
    from repro.core.discovery import _round_key

    for magnitude in (1e-6, 1.0, 24.1, 1e4):
        noisy = magnitude * (1.0 + 3e-16)
        assert _round_key([magnitude]) == _round_key([noisy])
