"""Tests for repro.core.regions (Section 4.5)."""

import numpy as np
import pytest

from repro.core.feasible import FeasibleRegion
from repro.core.regions import InfluenceDiagram, RegionOfInfluence
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["r1", "r2"])
CENTER = CostVector(SPACE, [1.0, 1.0])


def _usage(*values):
    return UsageVector(SPACE, list(values))


def _diagram(delta=100.0):
    usages = (_usage(1, 10), _usage(10, 1), _usage(4, 4), _usage(8, 8))
    return InfluenceDiagram(usages, FeasibleRegion(CENTER, delta))


def test_membership_matches_direct_optimality():
    rng = np.random.default_rng(51)
    diagram = _diagram()
    regions = diagram.regions
    for cost in FeasibleRegion(CENTER, 100.0).sample(rng, 200):
        owner = diagram.owner(cost)
        assert regions[owner].contains(cost)


def test_cone_property_scale_invariance():
    """Regions of influence are cones: membership survives scaling."""
    diagram = _diagram()
    region = diagram.regions[0]
    # Plan 0 = (1,10) barely touches r1, so it wins where r1 is
    # expensive and r2 cheap.
    cost = CostVector(SPACE, [3.0, 0.05])
    assert region.contains(cost)
    assert region.contains(cost.scaled(1e6))
    assert region.contains(cost.scaled(1e-6))


def test_non_candidate_region_is_empty():
    diagram = _diagram()
    # Plan 3 = (8,8) is dominated by plan 2 = (4,4): empty region.
    assert diagram.regions[3].is_empty()
    assert diagram.regions[3].interior_point() is None
    assert diagram.nonempty_regions() == [0, 1, 2]


def test_interior_points_belong_to_their_region():
    diagram = _diagram()
    for index in diagram.nonempty_regions():
        point = diagram.regions[index].interior_point()
        assert point is not None
        assert diagram.regions[index].contains(point)


def test_margin_positive_only_for_full_dimensional_regions():
    diagram = _diagram()
    for index in diagram.nonempty_regions():
        assert diagram.regions[index].margin() > 0
    assert diagram.regions[3].margin() is None


def test_adjacency_structure_of_hull_neighbors():
    diagram = _diagram()
    pairs = diagram.adjacency_pairs()
    # On the lower hull (1,10)-(4,4)-(10,1): 0-2 and 1-2 share facets;
    # 0 and 1 are separated by plan 2's cone.
    assert (0, 2) in pairs
    assert (1, 2) in pairs
    assert (0, 1) not in pairs


def test_volume_fractions_sum_to_one():
    rng = np.random.default_rng(53)
    diagram = _diagram()
    fractions = diagram.volume_fractions(rng, n_samples=2000)
    assert fractions.sum() == pytest.approx(1.0)
    assert fractions[3] == 0.0  # dominated plan owns nothing


def test_single_region_volume_agrees_with_diagram():
    rng = np.random.default_rng(57)
    diagram = _diagram()
    lone = diagram.regions[2].volume_fraction(
        np.random.default_rng(57), n_samples=2000
    )
    joint = diagram.volume_fractions(rng, n_samples=2000)[2]
    assert lone == pytest.approx(joint, abs=0.05)


def test_volume_fraction_validates_sample_count():
    diagram = _diagram()
    with pytest.raises(ValueError):
        diagram.regions[0].volume_fraction(np.random.default_rng(0), 0)


def test_empty_diagram_rejected():
    with pytest.raises(ValueError):
        InfluenceDiagram((), FeasibleRegion(CENTER, 10.0))


def test_region_of_influence_dataclass_accessors():
    usages = (_usage(1, 2), _usage(2, 1))
    region = RegionOfInfluence(0, usages, FeasibleRegion(CENTER, 10.0))
    assert region.usage is usages[0]
