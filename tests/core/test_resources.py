"""Tests for repro.core.resources."""

import pytest

from repro.core.resources import (
    Resource,
    ResourceSpace,
    ResourceSpaceMismatchError,
    space_union,
)


def test_from_names_builds_ordered_space():
    space = ResourceSpace.from_names(["cpu", "disk.seek", "disk.xfer"])
    assert space.dimension == 3
    assert space.names == ("cpu", "disk.seek", "disk.xfer")
    assert space.index("disk.xfer") == 2


def test_duplicate_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        ResourceSpace.from_names(["cpu", "cpu"])


def test_empty_space_rejected():
    with pytest.raises(ValueError):
        ResourceSpace(())


def test_unknown_resource_name_raises_keyerror():
    space = ResourceSpace.from_names(["cpu"])
    with pytest.raises(KeyError, match="unknown resource"):
        space.index("disk")


def test_contains_and_iteration():
    space = ResourceSpace.from_names(["a", "b"])
    assert "a" in space
    assert "c" not in space
    assert [r.name for r in space] == ["a", "b"]
    assert len(space) == 2


def test_resource_kind_validation():
    with pytest.raises(ValueError, match="unknown resource kind"):
        Resource("x", kind="bogus")
    with pytest.raises(ValueError, match="non-empty"):
        Resource("")


def test_indices_of_kind_and_subjects():
    space = ResourceSpace(
        (
            Resource("cpu", kind="cpu"),
            Resource("table:LINEITEM", kind="table", subject="LINEITEM"),
            Resource("index:LINEITEM", kind="index", subject="LINEITEM"),
            Resource("table:ORDERS", kind="table", subject="ORDERS"),
            Resource("temp", kind="temp"),
        )
    )
    assert space.indices_of_kind("table") == (1, 3)
    assert space.indices_of_kind("table", "index") == (1, 2, 3)
    assert space.subjects_of_kind("table") == ("LINEITEM", "ORDERS")
    with pytest.raises(ValueError, match="unknown kinds"):
        space.indices_of_kind("nope")


def test_require_same_accepts_equal_value_spaces():
    space_a = ResourceSpace.from_names(["a", "b"])
    space_b = ResourceSpace.from_names(["a", "b"])
    space_a.require_same(space_b)  # must not raise


def test_require_same_rejects_different_spaces():
    space_a = ResourceSpace.from_names(["a", "b"])
    space_b = ResourceSpace.from_names(["a", "c"])
    with pytest.raises(ResourceSpaceMismatchError):
        space_a.require_same(space_b)


def test_space_union_merges_preserving_order():
    space_a = ResourceSpace.from_names(["a", "b"])
    space_b = ResourceSpace.from_names(["b", "c"])
    merged = space_union([space_a, space_b])
    assert merged.names == ("a", "b", "c")


def test_space_union_conflicting_definitions_rejected():
    space_a = ResourceSpace((Resource("x", kind="cpu"),))
    space_b = ResourceSpace((Resource("x", kind="temp"),))
    with pytest.raises(ValueError, match="conflicting"):
        space_union([space_a, space_b])


def test_resource_lookup_by_name():
    space = ResourceSpace((Resource("cpu", kind="cpu"),))
    assert space.resource("cpu").kind == "cpu"
