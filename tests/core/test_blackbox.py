"""Tests for repro.core.blackbox."""

import pytest

from repro.core.blackbox import BlackBoxOptimizer, PlanChoice, TabularBlackBox
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["r1", "r2"])


def _usage(*values):
    return UsageVector(SPACE, list(values))


def _cost(*values):
    return CostVector(SPACE, list(values))


def test_reports_cheapest_plan_and_exact_cost():
    box = TabularBlackBox([("a", _usage(1, 10)), ("b", _usage(10, 1))])
    # Expensive r1, cheap r2: plan a (light on r1) wins at 100 + 10.
    choice = box.optimize(_cost(100, 1))
    assert choice == PlanChoice(signature="a", total_cost=110.0)
    choice = box.optimize(_cost(1, 100))
    assert choice.signature == "b"


def test_protocol_conformance():
    box = TabularBlackBox([("a", _usage(1, 1))])
    assert isinstance(box, BlackBoxOptimizer)


def test_call_count_increments():
    box = TabularBlackBox([("a", _usage(1, 1))])
    assert box.call_count == 0
    box.optimize(_cost(1, 1))
    box.optimize(_cost(2, 2))
    assert box.call_count == 2


def test_duplicate_signatures_rejected():
    with pytest.raises(ValueError, match="unique"):
        TabularBlackBox([("a", _usage(1, 1)), ("a", _usage(2, 2))])


def test_empty_plan_list_rejected():
    with pytest.raises(ValueError):
        TabularBlackBox([])


def test_usage_of_ground_truth_lookup():
    usage = _usage(3, 4)
    box = TabularBlackBox([("a", usage)])
    assert box.usage_of("a") == usage
    with pytest.raises(KeyError):
        box.usage_of("nope")


def test_deterministic_tie_breaking():
    box = TabularBlackBox([("first", _usage(1, 1)), ("tied", _usage(1, 1))])
    assert box.optimize(_cost(5, 5)).signature == "first"


def test_quantization_rounds_total_cost():
    box = TabularBlackBox(
        [("a", _usage(1, 1))], quantization=1e-3
    )
    exact_total = 1.23456789 + 1.0
    choice = box.optimize(_cost(1.23456789, 1.0))
    # Snapped to a grid of step 1e-3 * 10**ceil(log10(total)) = 0.01.
    assert choice.total_cost == pytest.approx(2.23)
    assert choice.total_cost != exact_total
    # Relative error stays within an order of the quantization level.
    assert abs(choice.total_cost - exact_total) / exact_total < 5e-3
