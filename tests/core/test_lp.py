"""Tests for repro.core.lp (exact simplex + scipy wrapper)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.lp import (
    LPStatus,
    feasible_point,
    max_min_slack,
    solve_lp_exact,
    solve_lp_scipy,
)


class TestExactSimplex:
    def test_simple_maximisation(self):
        # max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12
        result = solve_lp_exact([3, 2], [[1, 1], [1, 3]], [4, 6])
        assert result.is_optimal
        assert result.objective == Fraction(12)
        assert result.x == (Fraction(4), Fraction(0))

    def test_degenerate_vertex(self):
        # Classic degeneracy; Bland's rule must still terminate.
        result = solve_lp_exact(
            [10, -57, -9, -24],
            [
                [0.5, -5.5, -2.5, 9],
                [0.5, -1.5, -0.5, 1],
                [1, 0, 0, 0],
            ],
            [0, 0, 1],
        )
        assert result.is_optimal
        assert result.objective == Fraction(1)

    def test_unbounded(self):
        result = solve_lp_exact([1], [[-1]], [0])
        assert result.status == LPStatus.UNBOUNDED

    def test_infeasible_with_negative_rhs(self):
        # x <= -1 with x >= 0 is infeasible.
        result = solve_lp_exact([1], [[1]], [-1])
        assert result.status == LPStatus.INFEASIBLE

    def test_negative_rhs_feasible(self):
        # -x <= -2  (x >= 2), x <= 5, max x -> 5
        result = solve_lp_exact([1], [[-1], [1]], [-2, 5])
        assert result.is_optimal
        assert result.objective == Fraction(5)

    def test_exact_fractions_no_rounding(self):
        result = solve_lp_exact(
            [Fraction(1, 3), Fraction(1, 7)],
            [[Fraction(1, 2), Fraction(1, 5)]],
            [Fraction(1)],
        )
        assert result.is_optimal
        # Best ratio of objective to constraint use is x2's
        # (1/7)/(1/5) = 5/7, so the optimum is x2 = 5, objective 5/7.
        assert result.objective == Fraction(5, 7)
        assert result.x == (Fraction(0), Fraction(5))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            solve_lp_exact([1, 2], [[1]], [1])
        with pytest.raises(ValueError):
            solve_lp_exact([1], [[1]], [1, 2])


class TestAgreementWithScipy:
    def test_random_instances_agree(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            n = int(rng.integers(1, 5))
            m = int(rng.integers(1, 6))
            c = rng.integers(-5, 6, size=n).tolist()
            a = rng.integers(-4, 5, size=(m, n)).tolist()
            b = rng.integers(-2, 8, size=m).tolist()
            exact = solve_lp_exact(c, a, b)
            approx = solve_lp_scipy(c, a, b)
            assert exact.status == approx.status, (c, a, b)
            if exact.is_optimal:
                assert float(exact.objective) == pytest.approx(
                    approx.objective, abs=1e-7
                ), (c, a, b)


class TestFeasiblePoint:
    def test_finds_point_in_halfspace_box_intersection(self):
        # x + y >= 1.5 inside [0,1]^2
        point = feasible_point([[1, 1]], [1.5], [0, 0], [1, 1])
        assert point is not None
        x, y = point
        assert x + y >= 1.5 - 1e-9
        assert 0 <= x <= 1 and 0 <= y <= 1

    def test_reports_infeasible(self):
        # x + y >= 3 inside [0,1]^2: impossible
        assert feasible_point([[1, 1]], [3], [0, 0], [1, 1]) is None

    def test_exact_backend_matches(self):
        point = feasible_point(
            [[1, 1]], [Fraction(3, 2)], [0, 0], [1, 1], exact=True
        )
        assert point is not None
        assert point[0] + point[1] >= Fraction(3, 2)

    def test_touching_boundary_is_feasible(self):
        # x >= 1 inside [0,1]: only the single point x == 1.
        point = feasible_point([[1]], [1], [0], [1])
        assert point is not None
        assert float(point[0]) == pytest.approx(1.0, abs=1e-9)


class TestMaxMinSlack:
    def test_positive_slack_for_interior(self):
        result = max_min_slack([[1, 0]], [0.2], [0, 0], [1, 1])
        assert result.is_optimal
        assert float(result.objective) > 0

    def test_zero_slack_for_touching(self):
        result = max_min_slack([[1]], [1], [0], [1])
        assert result.is_optimal
        assert float(result.objective) == pytest.approx(0.0, abs=1e-9)

    def test_slack_capped_at_one(self):
        result = max_min_slack([[1]], [-100], [0], [1])
        assert result.is_optimal
        assert float(result.objective) == pytest.approx(1.0)

    def test_box_mismatch_rejected(self):
        with pytest.raises(ValueError):
            max_min_slack([[1, 1]], [0], [0], [1])
        with pytest.raises(ValueError):
            max_min_slack([[1]], [0], [0, 0], [1])
