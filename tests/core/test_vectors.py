"""Tests for repro.core.vectors."""

import numpy as np
import pytest

from repro.core.resources import ResourceSpace, ResourceSpaceMismatchError
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["cpu", "seek", "xfer"])


def test_usage_from_sequence_and_mapping_agree():
    from_seq = UsageVector(SPACE, [1.0, 2.0, 3.0])
    from_map = UsageVector(SPACE, {"cpu": 1, "seek": 2, "xfer": 3})
    assert from_seq == from_map


def test_mapping_defaults_missing_dims_to_zero():
    usage = UsageVector(SPACE, {"seek": 5})
    assert usage["cpu"] == 0.0
    assert usage["seek"] == 5.0


def test_wrong_length_rejected():
    with pytest.raises(ValueError, match="expected 3 values"):
        UsageVector(SPACE, [1.0, 2.0])


def test_negative_usage_rejected():
    with pytest.raises(ValueError):
        UsageVector(SPACE, [1.0, -0.5, 0.0])


def test_nonfinite_rejected():
    with pytest.raises(ValueError, match="finite"):
        UsageVector(SPACE, [1.0, float("nan"), 0.0])
    with pytest.raises(ValueError, match="finite"):
        CostVector(SPACE, [1.0, float("inf"), 1.0])


def test_cost_must_be_strictly_positive():
    with pytest.raises(ValueError):
        CostVector(SPACE, [1.0, 0.0, 1.0])
    with pytest.raises(ValueError):
        CostVector(SPACE, [1.0, -1.0, 1.0])


def test_dot_product_is_equation_3():
    usage = UsageVector(SPACE, [2.0, 3.0, 4.0])
    cost = CostVector(SPACE, [10.0, 1.0, 0.5])
    assert usage.dot(cost) == pytest.approx(2 * 10 + 3 * 1 + 4 * 0.5)
    assert cost.dot(usage) == usage.dot(cost)


def test_dot_across_spaces_rejected():
    other = ResourceSpace.from_names(["a", "b", "c"])
    usage = UsageVector(SPACE, [1, 1, 1])
    cost = CostVector(other, [1, 1, 1])
    with pytest.raises(ResourceSpaceMismatchError):
        usage.dot(cost)


def test_usage_addition_and_scaling():
    a = UsageVector(SPACE, [1, 2, 3])
    b = UsageVector(SPACE, [4, 5, 6])
    assert (a + b) == UsageVector(SPACE, [5, 7, 9])
    assert a.scaled(2.5) == UsageVector(SPACE, [2.5, 5, 7.5])
    with pytest.raises(ValueError):
        a.scaled(-1)


def test_usage_difference_is_raw_normal():
    a = UsageVector(SPACE, [1, 5, 0])
    b = UsageVector(SPACE, [2, 1, 0])
    normal = a - b
    assert isinstance(normal, np.ndarray)
    assert normal.tolist() == [-1, 4, 0]


def test_domination_follows_positive_first_quadrant():
    a = UsageVector(SPACE, [1, 1, 1])
    worse = UsageVector(SPACE, [1, 1, 2])
    incomparable = UsageVector(SPACE, [0.5, 2, 1])
    assert a.dominates(worse)
    assert not worse.dominates(a)
    assert not a.dominates(incomparable)
    assert not incomparable.dominates(a)
    assert not a.dominates(a)  # equal vectors do not dominate


def test_support_reports_positive_dimensions():
    usage = UsageVector(SPACE, [0, 3, 0])
    assert usage.support() == (1,)


def test_values_are_read_only():
    usage = UsageVector(SPACE, [1, 2, 3])
    with pytest.raises(ValueError):
        usage.values[0] = 99


def test_cost_scaling_and_perturbation():
    cost = CostVector(SPACE, [1.0, 24.1, 9.0])
    scaled = cost.scaled(10)
    assert scaled["seek"] == pytest.approx(241.0)
    perturbed = cost.perturbed({"seek": 2.0})
    assert perturbed["seek"] == pytest.approx(48.2)
    assert perturbed["cpu"] == pytest.approx(1.0)
    with pytest.raises(ValueError):
        cost.perturbed({"seek": 0.0})
    with pytest.raises(ValueError):
        cost.scaled(0)


def test_convex_combination_endpoints():
    c1 = CostVector(SPACE, [1, 1, 1])
    c2 = CostVector(SPACE, [3, 5, 7])
    assert c1.convex_combination(c2, 1.0) == c1
    assert c1.convex_combination(c2, 0.0) == c2
    mid = c1.convex_combination(c2, 0.5)
    assert mid.values.tolist() == [2, 3, 4]
    with pytest.raises(ValueError):
        c1.convex_combination(c2, 1.5)


def test_as_dict_roundtrip():
    usage = UsageVector(SPACE, [1, 2, 3])
    assert UsageVector(SPACE, usage.as_dict()) == usage


def test_hash_and_equality():
    a = UsageVector(SPACE, [1, 2, 3])
    b = UsageVector(SPACE, [1, 2, 3])
    assert a == b
    assert hash(a) == hash(b)
    assert a != UsageVector(SPACE, [1, 2, 4])


def test_isclose_tolerance():
    a = UsageVector(SPACE, [1, 2, 3])
    b = UsageVector(SPACE, [1 + 1e-12, 2, 3])
    assert a.isclose(b)
    assert not a.isclose(UsageVector(SPACE, [1.1, 2, 3]))
