"""Tests for repro.core.geometry."""

import numpy as np
import pytest

from repro.core.geometry import (
    Side,
    SwitchoverPlane,
    equicost_value,
    on_same_equicost_line,
    switchover_normal,
    switchover_point_in_box,
)
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["r1", "r2"])


def _usage(*values):
    return UsageVector(SPACE, list(values))


def _cost(*values):
    return CostVector(SPACE, list(values))


def test_switchover_normal_is_a_minus_b():
    assert switchover_normal(_usage(3, 1), _usage(1, 2)).tolist() == [2, -1]


def test_plane_rejects_identical_plans():
    with pytest.raises(ValueError):
        SwitchoverPlane(_usage(1, 1), _usage(1, 1))


def test_plane_contains_tie_points():
    # A=(1,0), B=(0,1): tie whenever c1 == c2.
    plane = SwitchoverPlane(_usage(1, 0), _usage(0, 1))
    assert plane.contains(_cost(5, 5))
    assert not plane.contains(_cost(5, 6))


def test_half_space_classification():
    plane = SwitchoverPlane(_usage(1, 0), _usage(0, 1))
    # c1 > c2 makes plan a (which uses r1) MORE expensive: A-dominated.
    assert plane.side(_cost(2, 1)) == Side.A_DOMINATED
    assert plane.side(_cost(1, 2)) == Side.B_DOMINATED
    assert plane.side(_cost(3, 3)) == Side.ON_PLANE


def test_side_is_scale_invariant():
    plane = SwitchoverPlane(_usage(2, 1), _usage(1, 3))
    cost = _cost(1.0, 0.7)
    assert plane.side(cost) == plane.side(cost.scaled(1e6))
    assert plane.side(cost) == plane.side(cost.scaled(1e-6))


def test_equicost_line_membership():
    cost = _cost(2, 3)
    a = _usage(3, 0)  # total 6
    b = _usage(0, 2)  # total 6
    c = _usage(1, 1)  # total 5
    assert equicost_value(a, cost) == pytest.approx(6)
    assert on_same_equicost_line(a, b, cost)
    assert not on_same_equicost_line(a, c, cost)


def test_tie_implies_zero_normal_dot():
    rng = np.random.default_rng(3)
    for _ in range(30):
        a = _usage(*rng.uniform(0, 5, 2))
        b = _usage(*rng.uniform(0, 5, 2))
        if np.array_equal(a.values, b.values):
            continue
        cost = _cost(*rng.uniform(0.1, 5, 2))
        plane = SwitchoverPlane(a, b)
        if on_same_equicost_line(a, b, cost, rel_tol=1e-12):
            assert plane.contains(cost)


def test_switchover_point_in_box_found():
    a = _usage(1, 0)
    b = _usage(0, 1)
    point = switchover_point_in_box(a, b, [0.5, 0.5], [2, 2])
    assert point is not None
    assert a.dot(point) == pytest.approx(b.dot(point))


def test_switchover_point_respects_others():
    a = _usage(1, 0)
    b = _usage(0, 1)
    # A third plan that is strictly better everywhere in the box makes
    # the a/b boundary irrelevant (not part of the influence diagram).
    dominator = _usage(0.01, 0.01)
    point = switchover_point_in_box(
        a, b, [0.5, 0.5], [2, 2], others=[dominator]
    )
    assert point is None


def test_switchover_point_absent_when_one_plan_always_wins():
    a = _usage(1, 1)
    b = _usage(2, 2)  # strictly worse under every positive cost
    point = switchover_point_in_box(a, b, [0.1, 0.1], [10, 10])
    assert point is None


def test_signed_margin_sign_convention():
    plane = SwitchoverPlane(_usage(2, 0), _usage(0, 1))
    cost = _cost(1, 1)
    # a costs 2, b costs 1 -> margin positive, a more expensive.
    assert plane.signed_margin(cost) == pytest.approx(1.0)
    assert plane.side(cost) == Side.A_DOMINATED
