"""Tests for repro.core.complementary (Sections 5.5-5.6)."""

import pytest

from repro.core.complementary import (
    analyze_pair,
    are_complementary,
    census,
    classify_pair,
    complementary_dimensions,
)
from repro.core.resources import Resource, ResourceSpace
from repro.core.vectors import UsageVector

# A space shaped like the paper's per-table-device experiment: CPU, one
# table-data dim, one index dim, one temp dim.
SPACE = ResourceSpace(
    (
        Resource("cpu", kind="cpu"),
        Resource("table:PART", kind="table", subject="PART"),
        Resource("index:PART", kind="index", subject="PART"),
        Resource("temp", kind="temp"),
    )
)


def _usage(cpu, table, index, temp):
    return UsageVector(SPACE, [cpu, table, index, temp])


def test_complementary_dimensions_found():
    a = _usage(1, 10, 0, 0)
    b = _usage(1, 10, 5, 0)
    assert complementary_dimensions(a, b) == (2,)
    assert are_complementary(a, b)


def test_non_complementary_pair():
    a = _usage(1, 10, 2, 0)
    b = _usage(2, 5, 1, 0)
    assert not are_complementary(a, b)
    assert classify_pair(a, b) == frozenset()


def test_tolerance_treats_small_values_as_zero():
    a = _usage(1, 10, 1e-12, 0)
    b = _usage(1, 10, 5, 0)
    # With tol=0 the 1e-12 counts as nonzero usage: not complementary.
    assert not are_complementary(a, b, tol=0.0)
    # With tol=1e-9 it is treated as zero: the pair becomes complementary.
    assert are_complementary(a, b, tol=1e-9)


def test_access_path_complementary_classification():
    # Same table pages, one uses the index, the other does not:
    # the Section 5.6 "access path complementary" case.
    table_scan = _usage(1, 100, 0, 0)
    index_scan = _usage(1, 100, 20, 0)
    assert classify_pair(table_scan, index_scan) == frozenset({"access-path"})


def test_temp_complementary_classification():
    in_memory = _usage(1, 100, 0, 0)
    spilling = _usage(1, 100, 0, 50)
    assert classify_pair(in_memory, spilling) == frozenset({"temp"})


def test_table_complementary_classification():
    touches_part = _usage(1, 100, 0, 0)
    skips_part = _usage(1, 0, 0, 0)
    assert classify_pair(touches_part, skips_part) == frozenset({"table"})


def test_multi_class_pair():
    a = _usage(1, 100, 20, 0)
    b = _usage(1, 100, 0, 50)
    assert classify_pair(a, b) == frozenset({"access-path", "temp"})


def test_cpu_only_complementarity_is_other():
    a = _usage(0, 10, 0, 0)
    b = _usage(5, 10, 0, 0)
    assert classify_pair(a, b) == frozenset({"other"})


def test_analyze_pair_ratios_and_near_complementary():
    a = _usage(1, 1000, 0, 0)
    b = _usage(1, 1, 0, 0)
    analysis = analyze_pair(0, 1, a, b)
    assert not analysis.complementary
    assert analysis.r_max == pytest.approx(1000.0)
    assert analysis.near_complementary(threshold=10.0)
    assert not analysis.near_complementary(threshold=10000.0)


def test_max_ratio_is_symmetric_spread():
    a = _usage(1, 1, 0, 0)
    b = _usage(1000, 1, 0, 0)
    analysis = analyze_pair(0, 1, a, b)
    assert analysis.max_ratio == pytest.approx(1000.0)


def test_census_counts():
    plans = [
        _usage(1, 100, 0, 0),    # table scan
        _usage(1, 100, 20, 0),   # index access
        _usage(1, 100, 0, 50),   # spills to temp
    ]
    result = census(plans)
    assert result.n_plans == 3
    assert result.n_pairs == 3
    assert result.n_complementary == 3
    assert result.count("access-path") == 2  # pairs (0,1) and (1,2)
    assert result.count("temp") == 2         # pairs (0,2) and (1,2)
    assert result.count("table") == 0
    assert result.fraction_complementary == pytest.approx(1.0)


def test_census_with_no_complementary_pairs():
    plans = [_usage(1, 10, 1, 1), _usage(2, 5, 2, 3)]
    result = census(plans)
    assert result.n_complementary == 0
    assert result.fraction_complementary == 0.0
    assert result.pairs[0].r_max == pytest.approx(2.0)


def test_census_near_complementary_threshold():
    plans = [_usage(1, 1000, 1, 1), _usage(1, 10, 1, 1)]
    loose = census(plans, near_threshold=10.0)
    tight = census(plans, near_threshold=1000.0)
    assert loose.n_near_complementary == 1
    assert tight.n_near_complementary == 0


def test_empty_census():
    result = census([])
    assert result.n_pairs == 0
    assert result.fraction_complementary == 0.0
    assert result.fraction_near_complementary == 0.0
