"""Tests for repro.core.feasible."""

import numpy as np
import pytest

from repro.core.feasible import FeasibleRegion, VariationGroup
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector

SPACE = ResourceSpace.from_names(["cpu", "seek", "xfer"])
CENTER = CostVector(SPACE, [1e-6, 24.1, 9.0])


def test_delta_below_one_rejected():
    with pytest.raises(ValueError):
        FeasibleRegion(CENTER, 0.5)


def test_default_groups_are_per_dimension():
    region = FeasibleRegion(CENTER, 10.0)
    assert len(region.groups) == 3
    assert region.n_vertices == 8
    assert region.fixed_dimensions == ()


def test_bounds_scale_by_delta():
    region = FeasibleRegion(CENTER, 10.0)
    assert region.lower() == pytest.approx(CENTER.values / 10)
    assert region.upper() == pytest.approx(CENTER.values * 10)


def test_fixed_dimensions_stay_at_center():
    groups = (VariationGroup("storage", (1, 2)),)
    region = FeasibleRegion(CENTER, 10.0, groups)
    assert region.fixed_dimensions == (0,)
    assert region.lower()[0] == CENTER.values[0]
    assert region.upper()[0] == CENTER.values[0]
    assert region.n_vertices == 2


def test_overlapping_groups_rejected():
    groups = (VariationGroup("a", (0, 1)), VariationGroup("b", (1, 2)))
    with pytest.raises(ValueError, match="multiple groups"):
        FeasibleRegion(CENTER, 2.0, groups)


def test_group_index_out_of_range_rejected():
    with pytest.raises(ValueError, match="out of range"):
        FeasibleRegion(CENTER, 2.0, (VariationGroup("g", (5,)),))


def test_empty_group_rejected():
    with pytest.raises(ValueError):
        VariationGroup("g", ())


def test_vertex_enumeration_matches_bit_pattern():
    region = FeasibleRegion(CENTER, 10.0)
    vertex = region.vertex(0b101)  # cpu and xfer at delta, seek at 1/delta
    assert vertex["cpu"] == pytest.approx(1e-5)
    assert vertex["seek"] == pytest.approx(2.41)
    assert vertex["xfer"] == pytest.approx(90.0)
    with pytest.raises(ValueError):
        region.vertex(8)


def test_vertices_iterator_covers_all():
    region = FeasibleRegion(CENTER, 2.0)
    vertices = list(region.vertices())
    assert len(vertices) == 8
    assert len({tuple(v.values.tolist()) for v in vertices}) == 8


def test_vertex_batches_agree_with_vertex():
    region = FeasibleRegion(CENTER, 3.0)
    collected = {}
    for ids, matrix in region.vertex_batches(batch_size=3):
        for vid, row in zip(ids, matrix):
            collected[int(vid)] = row
    assert len(collected) == 8
    for vid, row in collected.items():
        assert row == pytest.approx(region.vertex(vid).values)


def test_grouped_vertices_share_multiplier():
    groups = (
        VariationGroup("cpu", (0,)),
        VariationGroup("disk", (1, 2)),
    )
    region = FeasibleRegion(CENTER, 10.0, groups)
    assert region.n_vertices == 4
    vertex = region.vertex(0b10)  # disk group at delta
    assert vertex["seek"] / CENTER["seek"] == pytest.approx(10.0)
    assert vertex["xfer"] / CENTER["xfer"] == pytest.approx(10.0)


def test_contains_center_and_vertices():
    region = FeasibleRegion(CENTER, 10.0)
    assert region.contains(CENTER)
    for vertex in region.vertices():
        assert region.contains(vertex)


def test_contains_rejects_outside_box():
    region = FeasibleRegion(CENTER, 2.0)
    outside = CostVector(SPACE, CENTER.values * 3)
    assert not region.contains(outside)


def test_contains_enforces_group_coupling():
    groups = (VariationGroup("cpu", (0,)), VariationGroup("disk", (1, 2)))
    region = FeasibleRegion(CENTER, 10.0, groups)
    decoupled = CENTER.perturbed({"seek": 2.0, "xfer": 5.0})
    assert not region.contains(decoupled)
    coupled = CENTER.perturbed({"seek": 2.0, "xfer": 2.0})
    assert region.contains(coupled)


def test_contains_enforces_fixed_dimensions():
    groups = (VariationGroup("disk", (1, 2)),)
    region = FeasibleRegion(CENTER, 10.0, groups)
    moved_cpu = CENTER.perturbed({"cpu": 2.0})
    assert not region.contains(moved_cpu)


def test_sample_within_region():
    rng = np.random.default_rng(1)
    region = FeasibleRegion(CENTER, 10.0)
    for cost in region.sample(rng, 100):
        assert np.all(cost.values >= region.lower() * (1 - 1e-12))
        assert np.all(cost.values <= region.upper() * (1 + 1e-12))


def test_sample_respects_groups():
    rng = np.random.default_rng(2)
    groups = (VariationGroup("disk", (1, 2)),)
    region = FeasibleRegion(CENTER, 10.0, groups)
    for cost in region.sample(rng, 20):
        assert region.contains(cost)


def test_with_delta_preserves_structure():
    groups = (VariationGroup("disk", (1, 2)),)
    region = FeasibleRegion(CENTER, 10.0, groups)
    wider = region.with_delta(100.0)
    assert wider.delta == 100.0
    assert wider.groups == region.groups
    assert wider.center == region.center


def test_delta_one_region_is_single_point():
    region = FeasibleRegion(CENTER, 1.0)
    assert region.lower() == pytest.approx(region.upper())
    samples = region.sample(np.random.default_rng(0), 5)
    for cost in samples:
        assert cost == CENTER
