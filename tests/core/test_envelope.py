"""Tests for the 1-D parametric plan envelope."""

import math

import numpy as np
import pytest

from repro.core.envelope import lower_envelope
from repro.core.feasible import VariationGroup
from repro.core.resources import ResourceSpace
from repro.core.switching import switching_distance
from repro.core.vectors import CostVector, UsageVector

SPACE = ResourceSpace.from_names(["r1", "r2"])
CENTER = CostVector(SPACE, [1.0, 1.0])
G1 = VariationGroup("r1", (0,))


def _usage(*values):
    return UsageVector(SPACE, list(values))


def _cost_at(plans, m):
    cost = CENTER.perturbed({"r1": m})
    return [p.dot(cost) for p in plans]


class TestEnvelopeStructure:
    def test_three_line_envelope(self):
        # Slopes 5, 2, 0.5 with increasing intercepts: classic fan.
        plans = [_usage(5, 1), _usage(2, 4), _usage(0.5, 8)]
        envelope = lower_envelope(plans, CENTER, G1, 0.01, 100.0)
        assert envelope.plan_sequence == (0, 1, 2)
        # Breakpoints: 0 vs 1 at (4-1)/(5-2) = 1; 1 vs 2 at
        # (8-4)/(2-0.5) = 8/3.
        assert envelope.breakpoints[0] == pytest.approx(1.0)
        assert envelope.breakpoints[1] == pytest.approx(8 / 3)

    def test_pieces_tile_the_interval(self):
        rng = np.random.default_rng(3)
        plans = [_usage(*rng.uniform(0.1, 10, 2)) for _ in range(8)]
        envelope = lower_envelope(plans, CENTER, G1, 0.01, 100.0)
        assert envelope.pieces[0].m_low == pytest.approx(0.01)
        assert envelope.pieces[-1].m_high == pytest.approx(100.0)
        for left, right in zip(envelope.pieces, envelope.pieces[1:]):
            assert left.m_high == pytest.approx(right.m_low)

    def test_at_most_one_piece_per_plan(self):
        """Affine functions appear on a lower envelope at most once."""
        rng = np.random.default_rng(11)
        for _ in range(30):
            plans = [_usage(*rng.uniform(0.1, 10, 2)) for _ in range(7)]
            envelope = lower_envelope(plans, CENTER, G1, 0.001, 1000.0)
            sequence = envelope.plan_sequence
            assert len(sequence) == len(set(sequence))

    def test_envelope_matches_pointwise_argmin(self):
        rng = np.random.default_rng(5)
        for _ in range(30):
            plans = [_usage(*rng.uniform(0.1, 10, 2)) for _ in range(6)]
            envelope = lower_envelope(plans, CENTER, G1, 0.01, 100.0)
            for m in np.logspace(-1.9, 1.9, 25):
                owner = envelope.plan_at(float(m))
                totals = _cost_at(plans, float(m))
                assert totals[owner] == pytest.approx(
                    min(totals), rel=1e-9
                )

    def test_single_plan(self):
        envelope = lower_envelope([_usage(1, 1)], CENTER, G1, 0.1, 10.0)
        assert envelope.plan_sequence == (0,)
        assert envelope.breakpoints == ()

    def test_plan_at_out_of_range(self):
        envelope = lower_envelope([_usage(1, 1)], CENTER, G1, 0.1, 10.0)
        with pytest.raises(ValueError):
            envelope.plan_at(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            lower_envelope([], CENTER, G1, 0.1, 10.0)
        with pytest.raises(ValueError):
            lower_envelope([_usage(1, 1)], CENTER, G1, 10.0, 0.1)
        with pytest.raises(ValueError):
            lower_envelope([_usage(1, 1)], CENTER, G1, -1.0, 10.0)


class TestAgreementWithSwitching:
    def test_first_breakpoint_above_one_matches_switching_distance(self):
        rng = np.random.default_rng(17)
        for _ in range(40):
            plans = [_usage(*rng.uniform(0.1, 10, 2)) for _ in range(6)]
            totals = _cost_at(plans, 1.0)
            initial = int(np.argmin(totals))
            distance = switching_distance(initial, plans, CENTER, G1)
            envelope = lower_envelope(plans, CENTER, G1, 1.0, 1e6)
            if envelope.pieces[0].plan_index != initial:
                continue  # tie at m=1 resolved differently; skip
            if math.isinf(distance.up_factor):
                assert len(envelope) == 1
            else:
                assert envelope.breakpoints[0] == pytest.approx(
                    distance.up_factor, rel=1e-9
                )

    def test_width_ratio(self):
        plans = [_usage(5, 1), _usage(0.5, 8)]
        envelope = lower_envelope(plans, CENTER, G1, 0.01, 100.0)
        piece = envelope.pieces[0]
        assert piece.width_ratio == pytest.approx(
            piece.m_high / piece.m_low
        )
