"""Tests for the 22 TPC-H query encodings."""

import pytest

from repro.catalog import build_tpch_catalog
from repro.workloads.tpch_queries import (
    TPCH_QUERY_NAMES,
    build_tpch_queries,
    tpch_query,
)


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(100)


@pytest.fixture(scope="module")
def queries(catalog):
    return build_tpch_queries(catalog)


def test_all_22_queries_present(queries):
    assert tuple(queries) == TPCH_QUERY_NAMES
    assert len(queries) == 22


def test_unknown_query_name_rejected(catalog):
    with pytest.raises(KeyError, match="Q1..Q22"):
        tpch_query("Q23", catalog)


def test_every_query_has_connected_join_graph(queries):
    for name, query in queries.items():
        if len(query.tables) > 1:
            assert query.is_connected(), name


def test_every_multi_table_query_joins_all_tables(queries):
    for name, query in queries.items():
        joined = set()
        for join in query.joins:
            joined |= join.aliases()
        if len(query.tables) > 1:
            assert joined == set(query.aliases), name


def test_table_counts_match_tpch_shapes(queries):
    expected_aliases = {
        "Q1": 1, "Q2": 5, "Q3": 3, "Q4": 2, "Q5": 6, "Q6": 1,
        "Q7": 6, "Q8": 8, "Q9": 6, "Q10": 4, "Q11": 3, "Q12": 2,
        "Q13": 2, "Q14": 2, "Q15": 2, "Q16": 2, "Q17": 2, "Q18": 3,
        "Q19": 2, "Q20": 5, "Q21": 5, "Q22": 2,
    }
    for name, count in expected_aliases.items():
        assert len(queries[name].tables) == count, name


def test_q8_is_the_largest_join(queries):
    assert max(len(q.tables) for q in queries.values()) == 8
    assert len(queries["Q8"].tables) == 8


def test_self_joins_use_aliases(queries):
    q21 = queries["Q21"]
    lineitem_aliases = [
        ref.alias for ref in q21.tables if ref.table == "LINEITEM"
    ]
    assert len(lineitem_aliases) == 2
    q7 = queries["Q7"]
    nation_aliases = [
        ref.alias for ref in q7.tables if ref.table == "NATION"
    ]
    assert len(nation_aliases) == 2


def test_selectivities_in_range(queries):
    for name, query in queries.items():
        for predicate in query.predicates:
            assert 0 < predicate.selectivity <= 1, name
        for join in query.joins:
            if join.selectivity is not None:
                assert 0 < join.selectivity <= 1, name


def test_q6_and_q1_are_single_table(queries):
    assert queries["Q1"].joins == ()
    assert queries["Q6"].joins == ()
    assert queries["Q6"].group_by == ()


def test_q9_partsupp_lineitem_composite_edge(queries, catalog):
    """The conditional 0.25 suppkey edge keeps |L x PS| ~= |L|."""
    from repro.optimizer.selectivity import CardinalityModel

    model = CardinalityModel(queries["Q9"], catalog)
    rows = model.join_rows(("PS", "L"))
    assert rows == pytest.approx(
        catalog.row_count("LINEITEM"), rel=0.05
    )


def test_q21_semi_join_cardinality(queries, catalog):
    """L1 x L2 on orderkey models the EXISTS: output <= |L1|."""
    from repro.optimizer.selectivity import CardinalityModel

    model = CardinalityModel(queries["Q21"], catalog)
    l1 = model.filtered_rows("L1")
    both = model.join_rows(("L1", "L2"))
    assert both <= l1 * 1.01


def test_q22_anti_join_cardinality(queries, catalog):
    """Customers-without-orders ~= |C|/3 before local predicates."""
    from repro.optimizer.selectivity import CardinalityModel

    q22 = queries["Q22"]
    model = CardinalityModel(q22, catalog)
    rows = model.join_rows(("C", "O"))
    local = model.local_selectivity("C")
    assert rows == pytest.approx(
        catalog.row_count("CUSTOMER") / 3 * local, rel=0.05
    )


def test_selectivities_scale_with_catalog(catalog):
    """Catalog-derived selectivities adapt to the scale factor."""
    small = build_tpch_catalog(1)
    q21_small = tpch_query("Q21", small)
    q21_large = tpch_query("Q21", catalog)
    edge_small = [j for j in q21_small.joins if j.selectivity][0]
    edge_large = [j for j in q21_large.joins if j.selectivity][0]
    assert edge_small.selectivity > edge_large.selectivity


def test_date_predicates_marked_sargable(queries):
    q3 = queries["Q3"]
    sargable_columns = {
        p.column for p in q3.predicates if p.column is not None
    }
    assert "O_ORDERDATE" in sargable_columns
    assert "L_SHIPDATE" in sargable_columns


def test_grouped_queries_declare_group_by(queries):
    for name in ("Q1", "Q3", "Q5", "Q10", "Q18"):
        assert queries[name].has_aggregation, name
    for name in ("Q6", "Q14", "Q17", "Q19"):
        assert not queries[name].has_aggregation, name
