"""Tests for the random workload generator."""

import numpy as np
import pytest

from repro.obs.manifest import catalog_digest
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.optimizer.dp import optimize_scalar
from repro.storage import StorageLayout
from repro.workloads.generator import (
    JOIN_SHAPES,
    GeneratorConfig,
    generate_workload,
    generated_task,
    random_catalog,
    random_query,
)


def test_random_catalog_structure():
    rng = np.random.default_rng(0)
    catalog = random_catalog(rng, n_tables=3)
    assert catalog.table_names() == ("T0", "T1", "T2")
    for name in catalog.table_names():
        assert catalog.row_count(name) >= 1_000
        assert catalog.clustered_index(name) is not None
        assert len(catalog.indexes_on(name)) == 2


def test_random_catalog_validates_input():
    with pytest.raises(ValueError):
        random_catalog(np.random.default_rng(0), n_tables=0)


@pytest.mark.parametrize("shape", JOIN_SHAPES)
def test_shapes_produce_connected_queries(shape):
    rng = np.random.default_rng(1)
    catalog = random_catalog(rng, n_tables=4)
    query = random_query(rng, catalog, shape=shape)
    assert query.is_connected()
    if shape == "chain":
        assert len(query.joins) == 3
    elif shape == "star":
        assert len(query.joins) == 3
    else:
        assert len(query.joins) == 6


def test_unknown_shape_rejected():
    rng = np.random.default_rng(2)
    catalog = random_catalog(rng, n_tables=3)
    with pytest.raises(ValueError, match="unknown join shape"):
        random_query(rng, catalog, shape="ring")


def test_generated_queries_are_optimizable():
    rng = np.random.default_rng(3)
    for seed in range(5):
        catalog = random_catalog(np.random.default_rng(seed), n_tables=4)
        query = random_query(
            np.random.default_rng(seed + 100), catalog, shape="chain",
            with_grouping=True,
        )
        layout = StorageLayout.shared_device(query.table_names())
        plan = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout,
            layout.center_costs(),
        )
        assert plan.node.aliases() == frozenset(query.aliases)


def test_grouping_flag(
):
    rng = np.random.default_rng(4)
    catalog = random_catalog(rng, n_tables=3)
    grouped = random_query(rng, catalog, with_grouping=True)
    assert grouped.has_aggregation
    plain = random_query(rng, catalog, with_grouping=False)
    assert not plain.has_aggregation


# ----------------------------------------------------------------------
# Platform-stable draw order
# ----------------------------------------------------------------------
def test_query_draws_do_not_depend_on_predicate_outcomes():
    """The rng stream position after random_query is branch-free.

    Whether predicates are kept (probability 0 vs 1) must not shift
    later draws — otherwise the same seed would generate different
    streams on platforms whose float rounding flips a single coin.
    """
    catalog = random_catalog(np.random.default_rng(0), n_tables=3)
    tails = []
    for prob in (0.0, 0.3, 1.0):
        rng = np.random.default_rng(42)
        random_query(rng, catalog, predicate_prob=prob)
        tails.append(int(rng.integers(0, 2**31)))
    assert tails[0] == tails[1] == tails[2]


def test_catalog_draws_do_not_depend_on_index_outcomes():
    tails = []
    for prob in (0.0, 1.0):
        rng = np.random.default_rng(42)
        random_catalog(rng, n_tables=3, fk_index_prob=prob)
        tails.append(int(rng.integers(0, 2**31)))
    assert tails[0] == tails[1]


def test_fk_index_prob_extremes():
    none = random_catalog(
        np.random.default_rng(0), n_tables=4, fk_index_prob=0.0
    )
    full = random_catalog(
        np.random.default_rng(0), n_tables=4, fk_index_prob=1.0
    )
    for name in none.table_names():
        assert len(none.indexes_on(name)) == 1  # PK only
        assert len(full.indexes_on(name)) == 2


# ----------------------------------------------------------------------
# The seeded stream: generated_task / generate_workload
# ----------------------------------------------------------------------
def test_generated_task_is_deterministic():
    first_catalog, first_query = generated_task(7, 3)
    second_catalog, second_query = generated_task(7, 3)
    assert catalog_digest(first_catalog) == catalog_digest(
        second_catalog
    )
    assert first_query == second_query
    assert first_query.name == "G3"


def test_stream_items_are_independent_of_enumeration():
    """Task ``index`` regenerates identically with no stream prefix."""
    streamed = list(generate_workload(5, 4))
    for index, (catalog, query) in enumerate(streamed):
        solo_catalog, solo_query = generated_task(5, index)
        assert catalog_digest(solo_catalog) == catalog_digest(catalog)
        assert solo_query == query


def test_stream_varies_by_index_and_seed():
    __, base = generated_task(0, 0)
    assert generated_task(0, 1)[1] != base
    assert generated_task(1, 0)[1] != base


def test_generate_workload_is_lazy():
    stream = generate_workload(0, 10**9)  # would never fit in memory
    __, query = next(stream)
    assert query.name == "G0"


def test_generated_queries_respect_config_bounds():
    config = GeneratorConfig(
        min_tables=2, max_tables=3, shape_weights=(1.0, 0.0, 0.0)
    )
    for __, query in generate_workload(1, 6, config):
        assert 2 <= len(query.tables) <= 3
        assert len(query.joins) == len(query.tables) - 1  # chain
        assert query.is_connected()


@pytest.mark.parametrize(
    "bad",
    [
        GeneratorConfig(min_tables=0),
        GeneratorConfig(min_tables=5, max_tables=4),
        GeneratorConfig(shape_weights=(1.0,)),
        GeneratorConfig(shape_weights=(0.0, 0.0, 0.0)),
        GeneratorConfig(shape_weights=(-1.0, 1.0, 1.0)),
    ],
)
def test_generator_config_validation(bad):
    with pytest.raises(ValueError):
        bad.validate()
