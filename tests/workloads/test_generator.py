"""Tests for the random workload generator."""

import numpy as np
import pytest

from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.optimizer.dp import optimize_scalar
from repro.storage import StorageLayout
from repro.workloads.generator import (
    JOIN_SHAPES,
    random_catalog,
    random_query,
)


def test_random_catalog_structure():
    rng = np.random.default_rng(0)
    catalog = random_catalog(rng, n_tables=3)
    assert catalog.table_names() == ("T0", "T1", "T2")
    for name in catalog.table_names():
        assert catalog.row_count(name) >= 1_000
        assert catalog.clustered_index(name) is not None
        assert len(catalog.indexes_on(name)) == 2


def test_random_catalog_validates_input():
    with pytest.raises(ValueError):
        random_catalog(np.random.default_rng(0), n_tables=0)


@pytest.mark.parametrize("shape", JOIN_SHAPES)
def test_shapes_produce_connected_queries(shape):
    rng = np.random.default_rng(1)
    catalog = random_catalog(rng, n_tables=4)
    query = random_query(rng, catalog, shape=shape)
    assert query.is_connected()
    if shape == "chain":
        assert len(query.joins) == 3
    elif shape == "star":
        assert len(query.joins) == 3
    else:
        assert len(query.joins) == 6


def test_unknown_shape_rejected():
    rng = np.random.default_rng(2)
    catalog = random_catalog(rng, n_tables=3)
    with pytest.raises(ValueError, match="unknown join shape"):
        random_query(rng, catalog, shape="ring")


def test_generated_queries_are_optimizable():
    rng = np.random.default_rng(3)
    for seed in range(5):
        catalog = random_catalog(np.random.default_rng(seed), n_tables=4)
        query = random_query(
            np.random.default_rng(seed + 100), catalog, shape="chain",
            with_grouping=True,
        )
        layout = StorageLayout.shared_device(query.table_names())
        plan = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout,
            layout.center_costs(),
        )
        assert plan.node.aliases() == frozenset(query.aliases)


def test_grouping_flag(
):
    rng = np.random.default_rng(4)
    catalog = random_catalog(rng, n_tables=3)
    grouped = random_query(rng, catalog, with_grouping=True)
    assert grouped.has_aggregation
    plain = random_query(rng, catalog, with_grouping=False)
    assert not plain.has_aggregation
