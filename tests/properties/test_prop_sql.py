"""Property-based tests for the SQL front end.

Generates random SPJ statements over the TPC-H schema, renders them as
SQL text, and checks that parse + translate recovers the intended
structure (a render/parse round-trip at the join-graph level).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import build_tpch_catalog
from repro.sql import parse_sql, sql_to_query

CATALOG = build_tpch_catalog(1)

#: (table, a filterable column) pairs used for generated predicates.
_FILTER_COLUMNS = {
    "CUSTOMER": "C_ACCTBAL",
    "ORDERS": "O_ORDERDATE",
    "LINEITEM": "L_QUANTITY",
    "PART": "P_SIZE",
    "SUPPLIER": "S_ACCTBAL",
}

#: FK edges of the TPC-H schema usable as join predicates.
_EDGES = [
    ("CUSTOMER", "C_CUSTKEY", "ORDERS", "O_CUSTKEY"),
    ("ORDERS", "O_ORDERKEY", "LINEITEM", "L_ORDERKEY"),
    ("PART", "P_PARTKEY", "LINEITEM", "L_PARTKEY"),
    ("SUPPLIER", "S_SUPPKEY", "LINEITEM", "L_SUPPKEY"),
]


@st.composite
def random_statement(draw):
    n_edges = draw(st.integers(0, 3))
    edges = draw(
        st.permutations(_EDGES).map(lambda p: list(p)[:n_edges])
    )
    tables: list[str] = []
    for left, __, right, __ in edges:
        for table in (left, right):
            if table not in tables:
                tables.append(table)
    if not tables:
        tables = [draw(st.sampled_from(sorted(_FILTER_COLUMNS)))]
    # Keep the join graph connected: drop edges whose tables are not
    # linked to the first component.
    connected = {tables[0]}
    kept_edges = []
    remaining = list(edges)
    changed = True
    while changed:
        changed = False
        for edge in list(remaining):
            if edge[0] in connected or edge[2] in connected:
                connected |= {edge[0], edge[2]}
                kept_edges.append(edge)
                remaining.remove(edge)
                changed = True
    tables = [t for t in tables if t in connected]
    n_filters = draw(st.integers(0, len(tables)))
    filtered = tables[:n_filters]
    where = [
        f"{left}.{lcol} = {right}.{rcol}"
        for left, lcol, right, rcol in kept_edges
    ]
    for table in filtered:
        column = _FILTER_COLUMNS[table]
        value = draw(st.integers(1, 1000))
        where.append(f"{table}.{column} < {value}")
    sql = "SELECT * FROM " + ", ".join(tables)
    if where:
        sql += " WHERE " + " AND ".join(where)
    return sql, len(kept_edges), len(filtered), tables


@given(random_statement())
@settings(max_examples=100, deadline=None)
def test_roundtrip_structure(case):
    sql, n_joins, n_filters, tables = case
    query = sql_to_query(sql, CATALOG)
    assert len(query.joins) == n_joins
    assert len(query.predicates) == n_filters
    assert set(query.aliases) == set(tables)
    if len(tables) > 1:
        assert query.is_connected()


@given(random_statement())
@settings(max_examples=60, deadline=None)
def test_parse_is_deterministic(case):
    sql, *_ = case
    first = parse_sql(sql)
    second = parse_sql(sql)
    assert first.predicates == second.predicates
    assert first.tables == second.tables


@given(random_statement())
@settings(max_examples=30, deadline=None)
def test_translated_queries_optimize(case):
    from repro.optimizer import DEFAULT_PARAMETERS, optimize_scalar
    from repro.storage import StorageLayout

    sql, *_ = case
    query = sql_to_query(sql, CATALOG)
    layout = StorageLayout.shared_device(query.table_names())
    plan = optimize_scalar(
        query, CATALOG, DEFAULT_PARAMETERS, layout, layout.center_costs()
    )
    assert plan.node.aliases() == frozenset(query.aliases)
