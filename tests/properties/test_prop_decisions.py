"""Property-based tests: decision-provenance margin geometry.

For any finite nonnegative usage matrix and positive cost batch the
extracted fragility quantities obey the switchover geometry: margins
are nonnegative (0 exactly on a tie), plane distances are nonnegative
and 0 *iff* the probe lies on a switchover plane, and both agree with
the brute-force definitions computed row by row.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.decisions import (
    explain_probe,
    margins_from_totals,
    plane_distances,
)

DIMS = st.integers(min_value=1, max_value=4)


@st.composite
def matrix_and_costs(draw):
    d = draw(DIMS)
    m = draw(st.integers(min_value=1, max_value=24))
    k = draw(st.integers(min_value=1, max_value=16))
    element = st.floats(
        0.0, 1e6, allow_nan=False, allow_infinity=False
    )
    matrix = np.array(
        draw(
            st.lists(
                st.lists(element, min_size=d, max_size=d),
                min_size=m, max_size=m,
            )
        )
    )
    # Duplicated rows force exact ties — the margin==0 edge case.
    if draw(st.booleans()) and m >= 2:
        matrix[draw(st.integers(0, m - 1))] = matrix[
            draw(st.integers(0, m - 1))
        ]
    positive = st.floats(
        1e-6, 1e6, allow_nan=False, allow_infinity=False
    )
    costs = np.array(
        draw(
            st.lists(
                st.lists(positive, min_size=d, max_size=d),
                min_size=k, max_size=k,
            )
        )
    )
    return matrix, costs


@settings(max_examples=120, deadline=None)
@given(matrix_and_costs())
def test_margin_nonnegative_and_zero_iff_tie(case):
    matrix, costs = case
    totals = costs @ matrix.T
    winners, winner_totals, runner_totals, margins = (
        margins_from_totals(totals)
    )
    for row in range(len(costs)):
        margin = margins[row]
        assert margin >= 0.0
        row_sorted = np.sort(totals[row])
        if len(row_sorted) >= 2:
            tied = row_sorted[0] == row_sorted[1]
            assert (margin == 0.0) == tied
        else:
            assert margin == np.inf


@settings(max_examples=120, deadline=None)
@given(matrix_and_costs())
def test_plane_distance_nonnegative_and_zero_iff_on_plane(case):
    matrix, costs = case
    totals = costs @ matrix.T
    winners, *_, margins = margins_from_totals(totals)
    distances = plane_distances(
        matrix, costs, totals, winners, margins
    )
    for row in range(len(costs)):
        distance = distances[row]
        assert distance >= 0.0
        # On a switchover plane two plans tie exactly; off it the
        # nearest-rival gap is strictly positive (up to the one
        # degenerate case of all-duplicate rows, where margin==0
        # forces distance 0 as well).
        if margins[row] == 0.0:
            assert distance == 0.0
        elif np.isfinite(distance):
            assert distance > 0.0


@settings(max_examples=60, deadline=None)
@given(matrix_and_costs())
def test_explain_probe_agrees_with_batch_extraction(case):
    matrix, costs = case
    totals = costs @ matrix.T
    winners, *_, margins = margins_from_totals(totals)
    distances = plane_distances(
        matrix, costs, totals, winners, margins
    )
    info = explain_probe(matrix, costs[0])
    assert info["winner"] == int(np.argmin(totals[0]))
    # The single-probe product rounds like a gemv, the batch like a
    # gemm: values agree to rounding, finiteness agrees exactly.
    if np.isfinite(margins[0]):
        assert np.isclose(
            info["margin"], margins[0], rtol=1e-9, atol=0.0
        )
    else:
        assert info["margin"] is None
    if np.isfinite(distances[0]):
        assert np.isclose(
            info["plane_distance"], distances[0], rtol=1e-9, atol=0.0
        )
    else:
        assert info["plane_distance"] is None
