"""Property-based tests for least-squares usage estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimation import gaussian_solve, least_squares_usage
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector


@st.composite
def usage_and_samples(draw):
    n = draw(st.integers(1, 6))
    space = ResourceSpace.from_names([f"r{i}" for i in range(n)])
    truth = UsageVector(
        space,
        draw(st.lists(st.floats(0.0, 1e4), min_size=n, max_size=n)),
    )
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    samples = []
    for _ in range(2 * n + 2):
        cost = CostVector(space, rng.uniform(0.1, 100.0, n))
        samples.append((cost, truth.dot(cost)))
    return space, truth, samples


@given(usage_and_samples())
@settings(max_examples=150, deadline=None)
def test_exact_samples_recover_usage(setup):
    """Clean samples from a linear model identify U_p exactly
    (Section 6.1.1's premise)."""
    space, truth, samples = setup
    estimate = least_squares_usage(space, samples)
    assert estimate.values == pytest.approx(
        truth.values, rel=1e-6, abs=1e-6 * max(1.0, truth.values.max())
    )


@given(usage_and_samples(), st.floats(0.0, 1e-4))
@settings(max_examples=80, deadline=None)
def test_small_noise_small_error(setup, noise):
    """Prediction errors degrade gracefully with quantization noise."""
    space, truth, samples = setup
    rng = np.random.default_rng(1)
    noisy = [
        (cost, total * (1.0 + rng.uniform(-noise, noise)))
        for cost, total in samples
    ]
    estimate = least_squares_usage(space, noisy)
    probe = CostVector(space, rng.uniform(0.1, 100.0, space.dimension))
    predicted = estimate.dot(probe)
    actual = truth.dot(probe)
    if actual > 0:
        assert predicted == pytest.approx(actual, rel=max(100 * noise, 1e-6))


@st.composite
def square_system(draw):
    n = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n)) + np.eye(n) * (n + 1)
    x = rng.normal(size=n)
    return a, x


@given(square_system())
@settings(max_examples=150, deadline=None)
def test_gaussian_solve_roundtrip(system):
    a, x = system
    b = a @ x
    assert gaussian_solve(a, b) == pytest.approx(x, rel=1e-6, abs=1e-8)
