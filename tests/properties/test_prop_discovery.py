"""Property-based tests for black-box candidate discovery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blackbox import TabularBlackBox
from repro.core.candidates import candidate_optimal_indices
from repro.core.discovery import discover_candidate_plans
from repro.core.feasible import FeasibleRegion
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector


@st.composite
def blackbox_setup(draw):
    n = draw(st.integers(2, 4))
    m = draw(st.integers(2, 7))
    space = ResourceSpace.from_names([f"r{i}" for i in range(n)])
    plans = [
        (
            f"plan-{k}",
            UsageVector(
                space,
                draw(
                    st.lists(st.floats(0.1, 100.0), min_size=n, max_size=n)
                ),
            ),
        )
        for k in range(m)
    ]
    delta = draw(st.sampled_from([5.0, 20.0, 100.0]))
    center = CostVector(space, [1.0] * n)
    seed = draw(st.integers(0, 2**31 - 1))
    return plans, FeasibleRegion(center, delta), seed


@given(blackbox_setup())
@settings(max_examples=40, deadline=None)
def test_discovery_sound_and_complete_for_fat_regions(setup):
    """Discovery reports only true candidates, and finds every plan
    owning a non-trivial share of the feasible region's volume.

    (Plans whose regions are thin slivers between nearby switchover
    planes may be missed at the resolution limit — the documented
    contract — so the completeness check uses measured volume share,
    with enough random probes that a 5%-volume region is hit with
    probability 1 - 0.95**512 for the fixed seed.)
    """
    plans, region, seed = setup
    box = TabularBlackBox(plans)
    result = discover_candidate_plans(
        box,
        region,
        rng=np.random.default_rng(seed),
        estimate_usages=False,
        max_optimizer_calls=60000,
        n_random_probes=512,
    )
    usages = [usage for __, usage in plans]
    truth = {
        plans[i][0] for i in candidate_optimal_indices(usages, region)
    }
    found = set(result.witnesses)
    # Soundness: every reported plan really wins somewhere.
    assert found <= truth
    # Volume-based completeness.
    if result.complete:
        matrix = np.vstack([u.values for u in usages])
        sample_rng = np.random.default_rng(12345)
        counts = np.zeros(len(plans), dtype=int)
        n_samples = 1500
        for cost in region.sample(sample_rng, n_samples):
            counts[int(np.argmin(matrix @ cost.values))] += 1
        for index, (signature, __) in enumerate(plans):
            if counts[index] / n_samples >= 0.05:
                assert signature in found, signature


@given(blackbox_setup())
@settings(max_examples=30, deadline=None)
def test_witnesses_are_verifiable(setup):
    plans, region, seed = setup
    box = TabularBlackBox(plans)
    result = discover_candidate_plans(
        box,
        region,
        rng=np.random.default_rng(seed),
        estimate_usages=False,
    )
    for signature, witness in result.witnesses.items():
        assert box.optimize(witness).signature == signature


@given(blackbox_setup())
@settings(max_examples=20, deadline=None)
def test_discovery_deterministic_given_seed(setup):
    plans, region, seed = setup
    first = discover_candidate_plans(
        TabularBlackBox(plans), region,
        rng=np.random.default_rng(seed), estimate_usages=False,
    )
    second = discover_candidate_plans(
        TabularBlackBox(plans), region,
        rng=np.random.default_rng(seed), estimate_usages=False,
    )
    assert first.signatures == second.signatures
    assert first.optimizer_calls == second.optimizer_calls
