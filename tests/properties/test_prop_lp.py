"""Property-based tests for the exact simplex vs scipy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lp import (
    LPStatus,
    feasible_point,
    solve_lp_exact,
    solve_lp_scipy,
)


@st.composite
def lp_instance(draw):
    n = draw(st.integers(1, 4))
    m = draw(st.integers(1, 5))
    c = draw(st.lists(st.integers(-5, 5), min_size=n, max_size=n))
    a = [
        draw(st.lists(st.integers(-4, 4), min_size=n, max_size=n))
        for _ in range(m)
    ]
    b = draw(st.lists(st.integers(-3, 8), min_size=m, max_size=m))
    return c, a, b


@given(lp_instance())
@settings(max_examples=150, deadline=None)
def test_exact_simplex_agrees_with_scipy(instance):
    c, a, b = instance
    exact = solve_lp_exact(c, a, b)
    approx = solve_lp_scipy(c, a, b)
    assert exact.status == approx.status
    if exact.is_optimal:
        assert float(exact.objective) == pytest.approx(
            approx.objective, abs=1e-6
        )


@given(lp_instance())
@settings(max_examples=150, deadline=None)
def test_exact_solution_is_feasible(instance):
    c, a, b = instance
    result = solve_lp_exact(c, a, b)
    if not result.is_optimal:
        return
    x = result.x
    assert all(value >= 0 for value in x)
    for row, rhs in zip(a, b):
        lhs = sum(coeff * value for coeff, value in zip(row, x))
        assert lhs <= rhs
    assert sum(ci * xi for ci, xi in zip(c, x)) == result.objective


@st.composite
def halfspace_box(draw):
    n = draw(st.integers(1, 4))
    m = draw(st.integers(1, 4))
    rows = [
        draw(st.lists(st.integers(-3, 3), min_size=n, max_size=n))
        for _ in range(m)
    ]
    rhs = draw(st.lists(st.integers(-5, 5), min_size=m, max_size=m))
    lo = [0.5] * n
    hi = [4.0] * n
    return rows, rhs, lo, hi


@given(halfspace_box())
@settings(max_examples=150, deadline=None)
def test_feasible_point_satisfies_system(setup):
    rows, rhs, lo, hi = setup
    point = feasible_point(rows, rhs, lo, hi)
    if point is None:
        # Cross-check: the exact backend must agree it is infeasible.
        assert feasible_point(rows, rhs, lo, hi, exact=True) is None
        return
    for low, value, high in zip(lo, point, hi):
        assert low - 1e-9 <= value <= high + 1e-9
    for row, bound in zip(rows, rhs):
        lhs = sum(coeff * value for coeff, value in zip(row, point))
        assert lhs >= bound - 1e-7


@given(lp_instance())
@settings(max_examples=50, deadline=None)
def test_exact_simplex_deterministic(instance):
    c, a, b = instance
    first = solve_lp_exact(c, a, b)
    second = solve_lp_exact(c, a, b)
    assert first.status == second.status
    assert first.x == second.x


def test_unbounded_detected_consistently():
    assert solve_lp_exact([1, 0], [[-1, -1]], [-1]).status == (
        LPStatus.UNBOUNDED
    )
    assert solve_lp_scipy([1, 0], [[-1, -1]], [-1]).status == (
        LPStatus.UNBOUNDED
    )
