"""Property-based tests for the paper's theorems (hypothesis).

These treat Theorems 1 and 2 and Lemma 1 as executable invariants over
randomly generated usage/cost vectors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    lemma1_holds,
    ratio_extremes,
    theorem1_interval,
    theorem2_interval,
)
from repro.core.costmodel import relative_total_cost
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector

DIMS = st.integers(min_value=1, max_value=6)


def _space(n):
    return ResourceSpace.from_names([f"r{i}" for i in range(n)])


@st.composite
def usage_pair_and_cost(draw, allow_zero=True):
    n = draw(DIMS)
    space = _space(n)
    low = 0.0 if allow_zero else 0.01
    a = draw(
        st.lists(
            st.floats(low, 100.0, allow_nan=False), min_size=n, max_size=n
        )
    )
    b = draw(
        st.lists(
            st.floats(0.01, 100.0, allow_nan=False), min_size=n, max_size=n
        )
    )
    c = draw(
        st.lists(
            st.floats(0.001, 1000.0, allow_nan=False, exclude_min=True),
            min_size=n,
            max_size=n,
        )
    )
    return (
        UsageVector(space, a),
        UsageVector(space, b),
        CostVector(space, c),
    )


@given(usage_pair_and_cost(), st.floats(1.0, 100.0))
@settings(max_examples=200, deadline=None)
def test_theorem1_invariant(triple, delta):
    """Perturbing each cost by <= delta moves T_rel by <= delta**2."""
    usage_a, usage_b, cost = triple
    gamma = relative_total_cost(usage_a, usage_b, cost)
    rng = np.random.default_rng(0)
    factors = delta ** rng.uniform(-1, 1, len(cost))
    perturbed = cost.perturbed(factors)
    observed = relative_total_cost(usage_a, usage_b, perturbed)
    low, high = theorem1_interval(gamma, delta)
    assert low * (1 - 1e-9) <= observed <= high * (1 + 1e-9)


@given(usage_pair_and_cost(allow_zero=False))
@settings(max_examples=200, deadline=None)
def test_theorem2_invariant(triple):
    """For strictly positive vectors T_rel stays within [r_min, r_max]
    under EVERY positive cost vector."""
    usage_a, usage_b, cost = triple
    low, high = theorem2_interval(usage_a, usage_b)
    observed = relative_total_cost(usage_a, usage_b, cost)
    assert low * (1 - 1e-9) <= observed <= high * (1 + 1e-9)


@given(usage_pair_and_cost())
@settings(max_examples=200, deadline=None)
def test_ratio_extremes_order(triple):
    usage_a, usage_b, __ = triple
    r_min, r_max = ratio_extremes(usage_a, usage_b)
    assert r_min <= r_max


@given(usage_pair_and_cost(allow_zero=False))
@settings(max_examples=100, deadline=None)
def test_ratio_extremes_antisymmetry(triple):
    """r_max(a, b) == 1 / r_min(b, a) for positive vectors."""
    usage_a, usage_b, __ = triple
    r_max_ab = ratio_extremes(usage_a, usage_b)[1]
    r_min_ba = ratio_extremes(usage_b, usage_a)[0]
    assert abs(r_max_ab * r_min_ba - 1.0) < 1e-9


@given(
    st.floats(0.01, 100.0),
    st.floats(0.01, 100.0),
    st.floats(0.01, 100.0),
    st.floats(0.01, 100.0),
    st.floats(0.0, 100.0),
    st.floats(0.0, 100.0),
)
@settings(max_examples=300, deadline=None)
def test_lemma1_property(a1, b1, a2, b2, c1, c2):
    if a2 / b2 > a1 / b1:
        (a1, b1), (a2, b2) = (a2, b2), (a1, b1)
    assert lemma1_holds(a1, b1, a2, b2, c1, c2)
