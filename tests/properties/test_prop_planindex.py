"""Property-based tests: the plan index IS the dense argmin.

The single invariant that lets every caller switch kernels freely:
for any finite nonnegative usage matrix and any cost batch —
degenerate rows, duplicates, zero components and all —
``PlanIndex.owner_batch`` returns exactly ``argmin(C @ U.T, axis=1)``
with the lowest-index tie-break.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planindex import PlanIndex, dense_owner_batch

DIMS = st.integers(min_value=1, max_value=5)


@st.composite
def matrix_and_costs(draw):
    d = draw(DIMS)
    m = draw(st.integers(min_value=1, max_value=40))
    k = draw(st.integers(min_value=1, max_value=30))
    element = st.floats(
        0.0, 1e6, allow_nan=False, allow_infinity=False
    )
    matrix = np.array(
        draw(
            st.lists(
                st.lists(element, min_size=d, max_size=d),
                min_size=m, max_size=m,
            )
        )
    )
    # Duplicated rows are the adversarial case for tie-breaking: BLAS
    # may give bitwise-equal rows different float totals, so the index
    # must reproduce whatever the dense kernel decides.
    if draw(st.booleans()) and m >= 2:
        src = draw(st.integers(0, m - 1))
        dst = draw(st.integers(0, m - 1))
        matrix[dst] = matrix[src]
    costs = np.array(
        draw(
            st.lists(
                st.lists(element, min_size=d, max_size=d),
                min_size=k, max_size=k,
            )
        )
    )
    return matrix, costs


@given(matrix_and_costs())
@settings(max_examples=80, deadline=None)
def test_owner_batch_equals_dense_argmin(case):
    matrix, costs = case
    index = PlanIndex(matrix, min_plans=1, witness_samples=64)
    assert index.active
    np.testing.assert_array_equal(
        index.owner_batch(costs), dense_owner_batch(matrix, costs)
    )


@given(matrix_and_costs())
@settings(max_examples=40, deadline=None)
def test_owner_matches_owner_batch_row_by_row(case):
    matrix, costs = case
    index = PlanIndex(matrix, min_plans=1, witness_samples=64)
    batch = index.owner_batch(costs)
    for row, expected in zip(costs, batch):
        assert index.owner(row) == expected
