"""Property-based tests for the worst-case sweep (Observation 2)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costmodel import global_relative_cost, optimal_plan_index
from repro.core.feasible import FeasibleRegion
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector
from repro.core.worstcase import worst_case_gtc


@st.composite
def sweep_setup(draw):
    n = draw(st.integers(2, 4))
    m = draw(st.integers(2, 6))
    space = ResourceSpace.from_names([f"r{i}" for i in range(n)])
    plans = [
        UsageVector(
            space,
            draw(st.lists(st.floats(0.1, 100.0), min_size=n, max_size=n)),
        )
        for _ in range(m)
    ]
    center = CostVector(space, [1.0] * n)
    delta = draw(st.sampled_from([2.0, 10.0, 50.0]))
    return plans, FeasibleRegion(center, delta)


@given(sweep_setup(), st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_vertex_maximum_dominates_interior_samples(setup, seed):
    """Observation 2: no sampled interior point beats the vertex max."""
    plans, region = setup
    initial = plans[optimal_plan_index(plans, region.center)]
    vertex_best = worst_case_gtc(initial, plans, region).gtc
    rng = np.random.default_rng(seed)
    for cost in region.sample(rng, 20):
        assert global_relative_cost(initial, plans, cost) <= (
            vertex_best * (1 + 1e-9)
        )


@given(sweep_setup())
@settings(max_examples=80, deadline=None)
def test_worst_case_bounded_by_theorem1(setup):
    plans, region = setup
    initial = plans[optimal_plan_index(plans, region.center)]
    point = worst_case_gtc(initial, plans, region)
    assert point.gtc <= region.delta**2 * (1 + 1e-9)
    assert point.gtc >= 1.0 - 1e-9


@given(sweep_setup())
@settings(max_examples=60, deadline=None)
def test_monotone_in_delta(setup):
    plans, region = setup
    initial = plans[optimal_plan_index(plans, region.center)]
    smaller = worst_case_gtc(initial, plans, region.with_delta(2.0)).gtc
    larger = worst_case_gtc(
        initial, plans, region.with_delta(region.delta * 4)
    ).gtc
    assert larger >= smaller * (1 - 1e-9)


@given(sweep_setup())
@settings(max_examples=60, deadline=None)
def test_worst_vertex_reproduces_reported_gtc(setup):
    plans, region = setup
    initial = plans[optimal_plan_index(plans, region.center)]
    point = worst_case_gtc(initial, plans, region)
    recomputed = global_relative_cost(initial, plans, point.worst_cost)
    assert abs(recomputed - point.gtc) <= 1e-9 * max(point.gtc, 1.0)
