"""Property-based tests for the optimizer over random workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vectors import CostVector
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.optimizer.dp import enumerate_root_plans, optimize_scalar
from repro.storage import StorageLayout
from repro.workloads.generator import JOIN_SHAPES, random_catalog, random_query


@st.composite
def workload(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n_tables = draw(st.integers(2, 4))
    shape = draw(st.sampled_from(JOIN_SHAPES))
    rng = np.random.default_rng(seed)
    catalog = random_catalog(rng, n_tables=n_tables)
    query = random_query(rng, catalog, shape=shape)
    layout = StorageLayout.shared_device(query.table_names())
    return catalog, query, layout, seed


@given(workload())
@settings(max_examples=25, deadline=None)
def test_scalar_optimum_is_in_pareto_set(setup):
    """The scalar DP's choice is never cheaper than the best Pareto
    plan, and never more expensive either — they coincide."""
    catalog, query, layout, seed = setup
    plans, truncated = enumerate_root_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, cell_cap=None
    )
    assert not truncated
    rng = np.random.default_rng(seed)
    for _ in range(3):
        factors = 10.0 ** rng.uniform(-2, 2, layout.space.dimension)
        cost = CostVector(
            layout.space, layout.center_costs().values * factors
        )
        scalar = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout, cost
        )
        best = min(p.usage.dot(cost) for p in plans)
        assert scalar.usage.dot(cost) == pytest.approx(best, rel=1e-9)


@given(workload(), st.floats(1e-3, 1e3))
@settings(max_examples=25, deadline=None)
def test_observation1_for_the_optimizer(setup, k):
    """Scaling ALL costs by k never changes the chosen plan."""
    catalog, query, layout, __ = setup
    base = layout.center_costs()
    plan_a = optimize_scalar(
        query, catalog, DEFAULT_PARAMETERS, layout, base
    )
    plan_b = optimize_scalar(
        query, catalog, DEFAULT_PARAMETERS, layout, base.scaled(k)
    )
    assert plan_a.signature == plan_b.signature


@given(workload())
@settings(max_examples=25, deadline=None)
def test_plans_cover_all_aliases_with_positive_usage(setup):
    catalog, query, layout, __ = setup
    plans, __ = enumerate_root_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, cell_cap=64
    )
    for plan in plans:
        assert plan.node.aliases() == frozenset(query.aliases)
        assert plan.usage.values.sum() > 0
        assert plan.rows >= 1.0
