"""Property-based tests for switchover geometry and convexity."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.costmodel import optimal_plan_index, relative_total_cost
from repro.core.geometry import Side, SwitchoverPlane
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector

DIMS = st.integers(min_value=2, max_value=5)


def _space(n):
    return ResourceSpace.from_names([f"r{i}" for i in range(n)])


# Zero or a sanely-sized magnitude: denormal-range usages (~1e-302)
# defeat the 1e-300 relative-scale floor in SwitchoverPlane.contains,
# so scaling by k underflows the margin but not the tolerance.  Such
# magnitudes are outside the cost model's domain.
_USAGE = st.one_of(st.just(0.0), st.floats(1e-9, 50.0))


@st.composite
def plan_pair_and_cost(draw):
    n = draw(DIMS)
    space = _space(n)
    a = draw(st.lists(_USAGE, min_size=n, max_size=n))
    b = draw(st.lists(_USAGE, min_size=n, max_size=n))
    assume(a != b)
    c = draw(
        st.lists(
            st.floats(0.01, 100.0, exclude_min=True),
            min_size=n,
            max_size=n,
        )
    )
    return UsageVector(space, a), UsageVector(space, b), CostVector(space, c)


@given(plan_pair_and_cost())
@settings(max_examples=200, deadline=None)
def test_side_agrees_with_relative_cost(triple):
    """A-dominated side <=> plan a strictly more expensive."""
    usage_a, usage_b, cost = triple
    plane = SwitchoverPlane(usage_a, usage_b)
    side = plane.side(cost, rel_tol=1e-12)
    cost_a = usage_a.dot(cost)
    cost_b = usage_b.dot(cost)
    if side == Side.A_DOMINATED:
        assert cost_a > cost_b
    elif side == Side.B_DOMINATED:
        assert cost_b > cost_a
    else:
        assert abs(cost_a - cost_b) <= 1e-9 * max(cost_a, cost_b, 1e-300)


@given(plan_pair_and_cost(), st.floats(1e-6, 1e6, exclude_min=True))
@settings(max_examples=150, deadline=None)
def test_side_scale_invariance(triple, k):
    """Regions of influence are cones (Observation 1)."""
    usage_a, usage_b, cost = triple
    plane = SwitchoverPlane(usage_a, usage_b)
    assert plane.side(cost) == plane.side(cost.scaled(k))


@st.composite
def plan_set_and_two_costs(draw):
    n = draw(DIMS)
    space = _space(n)
    m = draw(st.integers(2, 6))
    plans = [
        UsageVector(
            space,
            draw(st.lists(st.floats(0.01, 50.0), min_size=n, max_size=n)),
        )
        for _ in range(m)
    ]
    c1 = CostVector(
        space,
        draw(
            st.lists(
                st.floats(0.01, 100.0, exclude_min=True),
                min_size=n, max_size=n,
            )
        ),
    )
    c2 = CostVector(
        space,
        draw(
            st.lists(
                st.floats(0.01, 100.0, exclude_min=True),
                min_size=n, max_size=n,
            )
        ),
    )
    return plans, c1, c2


@given(plan_set_and_two_costs(), st.floats(0.0, 1.0))
@settings(max_examples=200, deadline=None)
def test_observation3_convexity(setup, beta):
    """A plan optimal at C1 and C2 is optimal at any convex combination."""
    plans, c1, c2 = setup
    index1 = optimal_plan_index(plans, c1)
    index2 = optimal_plan_index(plans, c2)
    assume(index1 == index2)
    combined = c1.convex_combination(c2, beta)
    winner = plans[index1]
    best_total = min(p.dot(combined) for p in plans)
    assert winner.dot(combined) <= best_total * (1 + 1e-9)


@given(plan_pair_and_cost())
@settings(max_examples=150, deadline=None)
def test_trel_monotone_along_lines(triple):
    """T_rel(a, b, .) is monotone along straight lines in cost space —
    the fact behind Observation 2's vertex argument."""
    usage_a, usage_b, cost = triple
    assume(usage_b.dot(cost) > 0)
    direction = np.abs(np.sin(np.arange(len(cost)) + 1.0)) + 0.1
    space = cost.space
    samples = []
    for t in (0.0, 0.25, 0.5, 0.75, 1.0):
        point = CostVector(space, cost.values + t * direction)
        if usage_b.dot(point) == 0:
            return
        samples.append(relative_total_cost(usage_a, usage_b, point))
    increasing = all(
        b >= a - 1e-9 * max(abs(a), 1.0) for a, b in zip(samples, samples[1:])
    )
    decreasing = all(
        b <= a + 1e-9 * max(abs(a), 1.0) for a, b in zip(samples, samples[1:])
    )
    assert increasing or decreasing
