"""Property-based tests for candidate-optimal plan sets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import (
    candidate_optimal_indices,
    pareto_undominated_indices,
)
from repro.core.costmodel import optimal_plan_index
from repro.core.feasible import FeasibleRegion
from repro.core.resources import ResourceSpace
from repro.core.vectors import CostVector, UsageVector


@st.composite
def plan_set(draw):
    n = draw(st.integers(2, 4))
    m = draw(st.integers(2, 8))
    space = ResourceSpace.from_names([f"r{i}" for i in range(n)])
    plans = [
        UsageVector(
            space,
            draw(
                st.lists(st.floats(0.1, 100.0), min_size=n, max_size=n)
            ),
        )
        for _ in range(m)
    ]
    delta = draw(st.sampled_from([2.0, 10.0, 100.0]))
    center = CostVector(space, [1.0] * n)
    return plans, FeasibleRegion(center, delta)


@given(plan_set(), st.integers(0, 2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_optimum_at_any_feasible_point_is_a_candidate(setup, seed):
    """Defining property of candidate sets (Section 4.4)."""
    plans, region = setup
    candidates = set(candidate_optimal_indices(plans, region))
    rng = np.random.default_rng(seed)
    for cost in region.sample(rng, 10):
        winner = optimal_plan_index(plans, cost)
        winning_total = plans[winner].dot(cost)
        # Winner itself, or a tied plan, must be in the candidate set.
        tied = {
            i
            for i, plan in enumerate(plans)
            if plan.dot(cost) <= winning_total * (1 + 1e-9)
        }
        assert tied & candidates, (winner, candidates)


@given(plan_set())
@settings(max_examples=100, deadline=None)
def test_candidates_subset_of_pareto(setup):
    plans, region = setup
    candidates = set(candidate_optimal_indices(plans, region))
    pareto = set(pareto_undominated_indices(plans, tol=1e-12))
    # Every candidate is undominated or a duplicate of one; check via
    # usage-value membership rather than raw indices.
    pareto_values = {plans[i].values.tobytes() for i in pareto}
    for index in candidates:
        assert plans[index].values.tobytes() in pareto_values


@given(plan_set())
@settings(max_examples=60, deadline=None)
def test_candidate_set_monotone_in_delta(setup):
    plans, region = setup
    small = set(
        candidate_optimal_indices(plans, region.with_delta(1.5))
    )
    large = set(
        candidate_optimal_indices(
            plans, region.with_delta(region.delta * 10)
        )
    )
    # Compare by usage values (duplicate vectors may pick different
    # representative indices).
    small_values = {plans[i].values.tobytes() for i in small}
    large_values = {plans[i].values.tobytes() for i in large}
    assert small_values <= large_values


@given(plan_set())
@settings(max_examples=60, deadline=None)
def test_dominated_plans_never_candidates(setup):
    plans, region = setup
    candidates = set(candidate_optimal_indices(plans, region))
    for i, plan in enumerate(plans):
        for j, other in enumerate(plans):
            if i != j and other.dominates(plan):
                assert i not in candidates
                break
