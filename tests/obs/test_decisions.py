"""The decision-provenance log: margin/plane math against brute force,
deterministic bottom-k sampling, the delta/merge channel, and the
export/validation helpers."""

import json

import numpy as np
import pytest

from repro.obs.decisions import (
    DecisionLog,
    decision_instant_events,
    explain_probe,
    margins_from_totals,
    plane_distances,
    validate_decision_records,
    write_decision_records,
)
from repro.obs.export import validate_trace_events

RNG = np.random.default_rng(7)


def _log(**kwargs):
    log = DecisionLog()
    log.configure(**kwargs)
    log.enable()
    return log


def _random_case(m=12, d=4, k=20, seed=0):
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(0.0, 10.0, size=(m, d))
    costs = rng.uniform(0.1, 5.0, size=(k, d))
    return matrix, costs, costs @ matrix.T


# ----------------------------------------------------------------------
# Margin / plane-distance extraction vs the brute-force oracle
# ----------------------------------------------------------------------
def test_margins_match_brute_force():
    _, costs, totals = _random_case(seed=1)
    winners, winner_totals, runner_totals, margins = (
        margins_from_totals(totals)
    )
    for row in range(len(costs)):
        order = np.sort(totals[row])
        assert winners[row] == np.argmin(totals[row])
        assert winner_totals[row] == order[0]
        assert runner_totals[row] == order[1]
        expected = (order[1] - order[0]) / abs(order[0])
        assert margins[row] == pytest.approx(expected, rel=1e-12)
        assert margins[row] >= 0.0


def test_margin_edge_cases():
    # Exact tie -> 0.0; single plan -> inf; zero winner total -> inf.
    tie = np.array([[2.0, 2.0, 5.0]])
    assert margins_from_totals(tie)[3][0] == 0.0
    single = np.array([[3.0]])
    assert margins_from_totals(single)[3][0] == np.inf
    zero = np.array([[0.0, 1.0]])
    assert margins_from_totals(zero)[3][0] == np.inf


def test_plane_distances_match_brute_force():
    matrix, costs, totals = _random_case(seed=2)
    winners, *_, margins = (
        margins_from_totals(totals)[0],
        *margins_from_totals(totals)[1:],
    )
    distances = plane_distances(matrix, costs, totals, winners, margins)
    for row in range(len(costs)):
        w = winners[row]
        best = np.inf
        for j in range(matrix.shape[0]):
            norm = np.linalg.norm(matrix[j] - matrix[w])
            if norm == 0.0:
                continue
            gap = (totals[row, j] - totals[row, w]) / norm
            best = min(best, gap / np.linalg.norm(costs[row]))
        assert distances[row] == pytest.approx(max(best, 0.0), abs=1e-15)
        assert distances[row] >= 0.0


def test_plane_distance_zero_iff_on_plane():
    # A probe orthogonal to (U_1 - U_0) lies exactly on the switchover
    # plane: the totals tie and the distance must be exactly 0.
    matrix = np.array([[1.0, 2.0], [2.0, 1.0], [9.0, 9.0]])
    cost = np.array([[3.0, 3.0]])
    totals = cost @ matrix.T
    winners, *_, margins = margins_from_totals(totals)
    distance = plane_distances(matrix, cost, totals, winners, margins)
    assert margins[0] == 0.0
    assert distance[0] == 0.0


def test_plane_distance_inf_without_distinct_rival():
    matrix = np.array([[1.0, 1.0], [1.0, 1.0]])  # duplicates only
    cost = np.array([[2.0, 3.0]])
    totals = cost @ matrix.T
    winners, *_, margins = margins_from_totals(totals)
    # Duplicate rows tie exactly: margin 0 forces distance 0.
    assert plane_distances(
        matrix, cost, totals, winners, margins
    )[0] == 0.0


# ----------------------------------------------------------------------
# explain_probe
# ----------------------------------------------------------------------
def test_explain_probe_matches_dense_argmin():
    matrix, costs, totals = _random_case(seed=3)
    for row in range(5):
        info = explain_probe(matrix, costs[row])
        order = np.argsort(totals[row], kind="stable")
        assert info["winner"] == int(order[0])
        assert info["runner_up"] == int(order[1])
        gap = totals[row, order[1]] - totals[row, order[0]]
        assert info["margin"] == pytest.approx(
            gap / abs(totals[row, order[0]]), rel=1e-9
        )
        assert info["plane_distance"] >= 0.0
        assert info["candidates"] == matrix.shape[0]


def test_explain_probe_crossings_cross_the_plane():
    matrix, costs, _ = _random_case(seed=4)
    info = explain_probe(matrix, costs[0])
    rival = info["nearest_rival"]
    for crossing in info["crossings"]:
        perturbed = costs[0].copy()
        perturbed[crossing["coordinate"]] = crossing["new_value"]
        totals = perturbed @ matrix.T
        # On the perturbed probe the winner and rival totals tie.
        assert totals[rival] == pytest.approx(
            totals[info["winner"]], rel=1e-9
        )


def test_explain_probe_single_plan():
    info = explain_probe(np.array([[1.0, 2.0]]), np.array([3.0, 4.0]))
    assert info["winner"] == 0
    assert info["runner_up"] is None
    assert info["margin"] is None
    assert info["crossings"] == []


# ----------------------------------------------------------------------
# Sampling determinism and the delta/merge channel
# ----------------------------------------------------------------------
def _observe_split(log, matrix, costs, totals, pieces):
    """Feed the same batch in ``pieces`` chunks under task 3."""
    log.begin_task(3)
    bounds = np.linspace(0, len(costs), pieces + 1).astype(int)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        if hi > lo:
            log.observe_batch(
                matrix, costs[lo:hi], totals[lo:hi], context="q"
            )
    return log.take_task()


def test_sample_is_independent_of_batch_chunking():
    matrix, costs, totals = _random_case(k=64, seed=5)
    deltas = []
    for pieces in (1, 2, 7):
        log = _log(sample_k=8)
        deltas.append(
            _observe_split(log, matrix, costs, totals, pieces)
        )
    assert deltas[0] == deltas[1] == deltas[2]
    assert len(deltas[0]["records"]) == 8


def test_merge_is_associative_across_task_order():
    matrix, costs, totals = _random_case(k=40, seed=6)
    per_task = []
    for task in range(3):
        log = _log(sample_k=6)
        log.begin_task(task)
        log.observe_batch(matrix, costs, totals, context=f"t{task}")
        per_task.append(log.take_task())

    merged_forward = _log(sample_k=6)
    for delta in per_task:
        merged_forward.merge(delta)
    merged_reverse = _log(sample_k=6)
    for delta in reversed(per_task):
        merged_reverse.merge(delta)
    assert (
        merged_forward.export_state() == merged_reverse.export_state()
    )
    assert len(merged_forward.records()) == 6


def test_load_state_round_trips():
    matrix, costs, totals = _random_case(seed=8)
    log = _log(sample_k=4)
    log.begin_task(0)
    log.observe_batch(matrix, costs, totals, context="a", reference=0)
    log.merge(log.take_task())
    state = log.export_state()

    other = _log(sample_k=4)
    other.load_state(state)
    assert other.export_state() == state
    assert other.summary() == log.summary()


def test_disabled_log_is_inert():
    log = DecisionLog()
    matrix, costs, totals = _random_case()
    log.observe_batch(matrix, costs, totals)
    assert log.take_task() is None
    assert log.records() == []
    with log.scoped("x"):
        pass
    assert log.summary()["probes"] == 0


def test_wrong_choice_accounting():
    matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
    costs = np.array([[2.0, 1.0], [1.0, 2.0]])
    totals = costs @ matrix.T
    log = _log()
    # Reference plan 0: row 0 picks plan 1 (wrong), row 1 plan 0.
    log.observe_batch(matrix, costs, totals, reference=0, context="w")
    summary = log.summary()
    assert summary["with_reference"] == 2
    assert summary["wrong"] == 1
    ctx = summary["contexts"]["w"]
    decade_pairs = ctx["decades"]
    assert sum(pair[0] for pair in decade_pairs.values()) == 2
    assert sum(pair[1] for pair in decade_pairs.values()) == 1


def test_sample_zero_keeps_aggregates_only():
    matrix, costs, totals = _random_case()
    log = _log(sample_k=0)
    log.observe_batch(matrix, costs, totals)
    summary = log.summary()
    assert summary["probes"] == len(costs)
    assert summary["sampled"] == 0


# ----------------------------------------------------------------------
# Export / validation helpers
# ----------------------------------------------------------------------
def _sampled_records():
    matrix, costs, totals = _random_case(seed=9)
    log = _log(sample_k=5)
    log.begin_task(1)
    log.observe_batch(
        matrix, costs, totals, reference=2, context="export"
    )
    log.merge(log.take_task())
    return log.records()


def test_jsonl_round_trip_validates(tmp_path):
    records = _sampled_records()
    target = write_decision_records(records, tmp_path / "d.jsonl")
    lines = target.read_text().splitlines()
    assert len(lines) == len(records)
    assert validate_decision_records(lines) == []
    assert [json.loads(line) for line in lines] == records


def test_validator_rejects_malformed_records():
    good = _sampled_records()[0]
    assert validate_decision_records([good]) == []
    assert validate_decision_records(["{not json"]) == [
        "records[0] is not valid JSON"
    ]
    missing = {k: v for k, v in good.items() if k != "winner"}
    assert "records[0] missing field: winner" in (
        validate_decision_records([missing])
    )
    bad_type = dict(good, winner=True)  # bool is not an int here
    assert "records[0].winner has wrong type" in (
        validate_decision_records([bad_type])
    )
    negative = dict(good, margin=-0.5)
    assert "records[0].margin must be >= 0" in (
        validate_decision_records([negative])
    )
    unknown = dict(good, extra=1)
    assert "records[0] unknown field: extra" in (
        validate_decision_records([unknown])
    )


def test_instant_events_are_valid_trace_events():
    events = decision_instant_events(_sampled_records())
    assert events
    assert validate_trace_events(events) == []
    assert all(event["ph"] == "i" for event in events)
    assert [event["ts"] for event in events] == list(
        range(len(events))
    )
