"""Manifest-renderer edge cases: empty metrics, cache-summary corners."""

from repro.obs.report import _cache_summary, render_manifest


def _manifest(metrics=None):
    return {
        "command": "figure --scenario fig5",
        "created_unix": 0,
        "package_version": "0.1.0",
        "git_sha": "deadbeef",
        "schema_version": 1,
        "timing": {"wall_seconds": 1.0, "cpu_seconds": 1.0},
        "trace": [],
        "metrics": metrics or {},
    }


def test_empty_metrics_render_none_recorded_line():
    rendered = render_manifest(_manifest())
    assert "metrics: (none recorded)" in rendered
    assert "plan cache:" not in rendered


def test_metrics_with_only_empty_sections_still_none_recorded():
    rendered = render_manifest(_manifest(
        {"counters": {}, "gauges": {}, "histograms": {}}
    ))
    assert "metrics: (none recorded)" in rendered


def test_populated_metrics_suppress_the_placeholder():
    rendered = render_manifest(_manifest(
        {"counters": {"optimize.calls": 12}}
    ))
    assert "metrics:" in rendered
    assert "(none recorded)" not in rendered
    assert "optimize.calls" in rendered


def test_cache_summary_silent_with_no_activity():
    assert _cache_summary({}) is None
    assert _cache_summary({
        "plancache.hits": 0,
        "plancache.misses": 0,
        "plancache.corrupt": 0,
    }) is None


def test_cache_summary_corrupt_only_reports_zero_hit_rate():
    summary = _cache_summary({"plancache.corrupt": 2})
    assert summary == (
        "plan cache: 0 hits, 0 misses (2 corrupt) — 0% hit rate"
    )
    rendered = render_manifest(_manifest(
        {"counters": {"plancache.corrupt": 2}}
    ))
    assert "0% hit rate" in rendered


def test_cache_summary_mixed_traffic():
    summary = _cache_summary({
        "plancache.hits": 3, "plancache.misses": 1
    })
    assert summary == (
        "plan cache: 3 hits, 1 misses (0 corrupt) — 75% hit rate"
    )
