"""Manifest-renderer edge cases: empty metrics, cache-summary corners."""

from repro.obs.report import (
    _cache_summary,
    render_comparison,
    render_manifest,
)


def _manifest(metrics=None):
    return {
        "command": "figure --scenario fig5",
        "created_unix": 0,
        "package_version": "0.1.0",
        "git_sha": "deadbeef",
        "schema_version": 1,
        "timing": {"wall_seconds": 1.0, "cpu_seconds": 1.0},
        "trace": [],
        "metrics": metrics or {},
    }


def test_empty_metrics_render_none_recorded_line():
    rendered = render_manifest(_manifest())
    assert "metrics: (none recorded)" in rendered
    assert "plan cache:" not in rendered


def test_metrics_with_only_empty_sections_still_none_recorded():
    rendered = render_manifest(_manifest(
        {"counters": {}, "gauges": {}, "histograms": {}}
    ))
    assert "metrics: (none recorded)" in rendered


def test_populated_metrics_suppress_the_placeholder():
    rendered = render_manifest(_manifest(
        {"counters": {"optimize.calls": 12}}
    ))
    assert "metrics:" in rendered
    assert "(none recorded)" not in rendered
    assert "optimize.calls" in rendered


def test_cache_summary_silent_with_no_activity():
    assert _cache_summary({}) is None
    assert _cache_summary({
        "plancache.hits": 0,
        "plancache.misses": 0,
        "plancache.corrupt": 0,
    }) is None


def test_cache_summary_corrupt_only_reports_zero_hit_rate():
    summary = _cache_summary({"plancache.corrupt": 2})
    assert summary == (
        "plan cache: 0 hits, 0 misses (2 corrupt) — 0% hit rate"
    )
    rendered = render_manifest(_manifest(
        {"counters": {"plancache.corrupt": 2}}
    ))
    assert "0% hit rate" in rendered


def test_cache_summary_mixed_traffic():
    summary = _cache_summary({
        "plancache.hits": 3, "plancache.misses": 1
    })
    assert summary == (
        "plan cache: 3 hits, 1 misses (0 corrupt) — 75% hit rate"
    )


# ----------------------------------------------------------------------
# Decisions block rendering + cross-schema comparison notes
# ----------------------------------------------------------------------
def _decisions_block():
    return {
        "sample_k": 4,
        "epsilon": 0.001,
        "seed": 0,
        "probes": 10,
        "with_reference": 10,
        "wrong": 3,
        "near_plane": 2,
        "sampled": 4,
        "paths": {"dense": 10},
        "fallback_reasons": {
            "near_tie": 1, "invalid_probe": 0, "weak_certificate": 0,
        },
        "contexts": {
            "census:Q1": {
                "probes": 10,
                "with_reference": 10,
                "wrong": 3,
                "near_plane": 2,
                "margin": {"count": 10, "sum": 5.0, "min": 0.0,
                           "max": 2.0},
                "paths": {"dense": 10},
                "decades": {"tie": [2, 2], "-1": [8, 1]},
            },
        },
        "records": [],
    }


def test_decisions_block_renders_fragility_table():
    manifest = _manifest()
    manifest["decisions"] = _decisions_block()
    rendered = render_manifest(manifest)
    assert "decisions: 10 probes observed, 4 sampled" in rendered
    assert "2 within 0.001 of a switchover plane" in rendered
    assert "lookup paths: dense 10" in rendered
    assert "fallback reasons: near-tie 1" in rendered
    assert "fragility by context" in rendered
    assert "census:Q1" in rendered
    assert "3/10" in rendered  # wrong / with_reference
    assert "wrong-choice fraction by margin decade:" in rendered
    assert "tie      2/2 (100.0%)" in rendered
    assert "1e-1     1/8 (12.5%)" in rendered


def test_absent_decisions_block_renders_nothing():
    rendered = render_manifest(_manifest())
    assert "decisions:" not in rendered
    manifest = _manifest()
    manifest["decisions"] = None
    assert "decisions:" not in render_manifest(manifest)


def test_planindex_summary_reason_breakdown():
    rendered = render_manifest(_manifest({"counters": {
        "planindex.probes": 100,
        "planindex.exact_fallbacks": 5,
        "planindex.exact_fallbacks.near_tie": 3,
        "planindex.exact_fallbacks.weak_certificate": 2,
    }}))
    assert "5 dense fallbacks (5.0%)" in rendered
    assert (
        "fallback reasons: near-tie 3, invalid-probe 0, "
        "weak-certificate 2"
    ) in rendered
    # Without per-reason counters the base line stands alone.
    plain = render_manifest(_manifest({"counters": {
        "planindex.probes": 100,
    }}))
    assert "0 dense fallbacks (0.0%)" in plain
    assert "fallback reasons" not in plain


def test_comparison_notes_blocks_absent_in_older_schema():
    new = _manifest()
    new["schema_version"] = 4
    new["decisions"] = _decisions_block()
    old = _manifest()
    old["schema_version"] = 2
    rendered = render_comparison(new, old)
    assert (
        "note: decisions block absent in older schema "
        "(v2 predates v4)"
    ) in rendered
    # Blocks the newer manifest does not carry draw no note.
    assert "profile block absent" not in rendered
    assert "timeseries block absent" not in rendered
    # Same-version diffs stay silent.
    peer = _manifest()
    peer["schema_version"] = 4
    assert "absent in older schema" not in render_comparison(new, peer)
