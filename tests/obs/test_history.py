"""Perf history store: entries, ingestion, trend gate, rendering."""

import json

import pytest

from repro.obs import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    bench_history_entries,
    default_history_path,
    detect_trends,
    load_history,
    manifest_history_entries,
    render_trend_report,
    validate_history_entry,
)


def _entry(series="bench:m/t", value=0.01, **overrides):
    entry = {
        "history_schema_version": HISTORY_SCHEMA_VERSION,
        "series": series,
        "value_seconds": value,
        "created_unix": 1754000000.0,
        "git_sha": "ab" * 20,
        "catalog_digest": "cd" * 32,
        "source": "unit",
    }
    entry.update(overrides)
    return entry


def _series(*values, series="bench:m/t"):
    return [_entry(series=series, value=v) for v in values]


# ----------------------------------------------------------------------
# Entry schema
# ----------------------------------------------------------------------
def test_valid_entry_has_no_errors():
    assert validate_history_entry(_entry()) == []


def test_schema_violations_are_all_reported():
    entry = _entry(value="fast", extra=1)
    del entry["series"]
    errors = validate_history_entry(entry)
    assert "missing field: series" in errors
    assert any("value_seconds" in e for e in errors)
    assert "unknown field: extra" in errors
    assert validate_history_entry([]) == [
        "history entry must be a JSON object"
    ]


def test_default_path_honours_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path))
    assert default_history_path() == tmp_path / "history.jsonl"
    monkeypatch.delenv("REPRO_HISTORY_DIR")
    assert str(default_history_path()).endswith("history.jsonl")


# ----------------------------------------------------------------------
# Store round-trip and tolerance
# ----------------------------------------------------------------------
def test_append_and_load_round_trip(tmp_path):
    path = tmp_path / "h.jsonl"
    entries = _series(0.01, 0.02)
    assert append_history(entries, path) == path
    append_history(_series(0.03), path)
    loaded = load_history(path)
    assert [e["value_seconds"] for e in loaded] == [0.01, 0.02, 0.03]
    assert loaded[0] == entries[0]


def test_append_rejects_invalid_entries(tmp_path):
    path = tmp_path / "h.jsonl"
    with pytest.raises(ValueError, match="invalid history entry"):
        append_history([{"series": "x"}], path)
    assert not path.exists()


def test_load_skips_corrupt_lines_with_warning(tmp_path, caplog):
    path = tmp_path / "h.jsonl"
    lines = [
        json.dumps(_entry(value=0.01)),
        "{not json",
        json.dumps({"series": "missing-everything"}),
        "",
        json.dumps(_entry(value=0.02)),
    ]
    path.write_text("\n".join(lines) + "\n")
    with caplog.at_level("WARNING", logger="repro.obs.history"):
        loaded = load_history(path)
    assert [e["value_seconds"] for e in loaded] == [0.01, 0.02]
    assert len(caplog.records) == 2


def test_load_missing_store_is_empty(tmp_path):
    assert load_history(tmp_path / "absent.jsonl") == []


# ----------------------------------------------------------------------
# Ingestion
# ----------------------------------------------------------------------
def test_bench_record_ingestion():
    record = {
        "benchmark": "planindex",
        "created_unix": 1754000000.0,
        "git_sha": "ab" * 20,
        "catalog_digest": "cd" * 32,
        "results": {
            "test_b": {"median_seconds": 0.002},
            "test_a": {"median_seconds": 0.001},
            "test_broken": {"median_seconds": "nan?"},
        },
    }
    entries = bench_history_entries(record, source="BENCH_x.json")
    assert [e["series"] for e in entries] == [
        "bench:planindex/test_a",
        "bench:planindex/test_b",
    ]
    assert entries[0]["value_seconds"] == 0.001
    assert entries[0]["git_sha"] == "ab" * 20
    assert entries[0]["source"] == "BENCH_x.json"
    assert all(validate_history_entry(e) == [] for e in entries)


def test_manifest_ingestion_sums_phases_by_name():
    manifest = {
        "command": "figure",
        "created_unix": 1754000000.0,
        "git_sha": "ab" * 20,
        "catalog_digest": "cd" * 32,
        "timing": {"wall_seconds": 2.5},
        "trace": [{
            "name": "cli.figure",
            "wall_seconds": 2.5,
            "children": [
                {"name": "parallel.task", "wall_seconds": 1.0,
                 "children": []},
                {"name": "parallel.task", "wall_seconds": 0.5,
                 "children": []},
                {"name": "figure.render", "wall_seconds": 0.25,
                 "children": []},
            ],
        }],
    }
    entries = manifest_history_entries(manifest, source="m.json")
    by_series = {e["series"]: e["value_seconds"] for e in entries}
    assert by_series == {
        "manifest:figure/total": 2.5,
        "manifest:figure/parallel.task": 1.5,
        "manifest:figure/figure.render": 0.25,
    }
    assert all(validate_history_entry(e) == [] for e in entries)


def test_manifest_ingestion_without_trace_still_records_total():
    entries = manifest_history_entries({
        "command": "bench", "timing": {"wall_seconds": 1.0},
    })
    assert [e["series"] for e in entries] == ["manifest:bench/total"]


# ----------------------------------------------------------------------
# Trend detection
# ----------------------------------------------------------------------
def test_flat_series_is_ok():
    report = detect_trends(_series(0.010, 0.011, 0.010, 0.009, 0.010))
    (trend,) = report.series
    assert trend.status == "ok"
    assert report.ok
    assert not trend.changepoint
    assert 0.9 < trend.ratio < 1.2


def test_two_x_regression_is_flagged():
    report = detect_trends(_series(0.010, 0.011, 0.010, 0.022))
    (trend,) = report.series
    assert trend.status == "regression"
    assert trend.ratio == pytest.approx(2.2, rel=0.01)
    assert not report.ok
    assert report.regressions == (trend,)


def test_sustained_shift_sets_the_changepoint_flag():
    spike = detect_trends(_series(0.010, 0.010, 0.010, 0.025))
    assert not spike.series[0].changepoint  # one-sample spike
    shift = detect_trends(_series(0.010, 0.010, 0.010, 0.025, 0.026))
    assert shift.series[0].status == "regression"
    assert shift.series[0].changepoint


def test_improvement_is_not_a_regression():
    report = detect_trends(_series(0.010, 0.010, 0.011, 0.004))
    assert report.series[0].status == "improvement"
    assert report.ok


def test_short_series_is_insufficient():
    report = detect_trends(_series(0.010, 0.012))
    (trend,) = report.series
    assert trend.status == "insufficient"
    assert trend.ratio is None
    assert report.ok


def test_window_bounds_the_baseline():
    # Old slow era followed by a fast era: with a window of 3 the
    # baseline only sees the fast era, so the last point is judged
    # against ~1ms, not the 100ms past.
    values = [0.100, 0.100, 0.100, 0.001, 0.001, 0.001, 0.002]
    report = detect_trends(_series(*values), window=3)
    (trend,) = report.series
    assert trend.baseline_median == pytest.approx(0.001)
    assert trend.status == "regression"


def test_rel_floor_absorbs_jitter_on_flat_series():
    values = (0.0100, 0.0100, 0.0100, 0.0119)
    strict = detect_trends(_series(*values), rel_floor=0.01)
    assert strict.series[0].status == "regression"
    lax = detect_trends(_series(*values), rel_floor=0.25)
    assert lax.series[0].status == "ok"


def test_series_filter_and_window_validation():
    entries = _series(1, 1, 1) + _series(2, 2, 2, series="bench:o/t")
    report = detect_trends(entries, series_filter="o/t")
    assert [t.series for t in report.series] == ["bench:o/t"]
    with pytest.raises(ValueError, match="window"):
        detect_trends(entries, window=1)


def test_nonpositive_baseline_is_not_judged():
    report = detect_trends(_series(0.0, 0.0, 0.0, 5.0))
    assert report.series[0].status == "ok"
    assert report.series[0].ratio is None


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def test_render_ok_report():
    text = render_trend_report(
        detect_trends(_series(0.010, 0.010, 0.010))
    )
    assert "bench:m/t" in text
    assert "verdict: OK" in text


def test_render_regression_report_names_the_worst_series():
    entries = (
        _series(0.010, 0.010, 0.010, 0.030)
        + _series(1.0, 1.0, 1.0, 1.0, series="bench:m/flat")
    )
    text = render_trend_report(detect_trends(entries))
    assert "verdict: REGRESSION" in text
    assert "worst: bench:m/t at 3.00x" in text
    assert "REGRESSION" in text and "OK" in text


def test_render_insufficient_report():
    text = render_trend_report(detect_trends(_series(0.01)))
    assert "INSUFFICIENT DATA" in text
