import pytest

from repro.obs import METRICS, TRACER


@pytest.fixture(autouse=True)
def _fresh_obs():
    """Each test starts from an empty registry and a disabled tracer."""
    METRICS.reset()
    TRACER.reset()
    TRACER.enabled = False
    yield
    METRICS.reset()
    TRACER.reset()
    TRACER.enabled = False
