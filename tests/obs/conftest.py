import pytest

from repro.obs import DECISIONS, METRICS, PROFILER, TIMESERIES, TRACER


@pytest.fixture(autouse=True)
def _fresh_obs():
    """Each test starts from empty registries and disabled samplers."""

    def clean():
        METRICS.reset()
        TRACER.reset()
        TRACER.enabled = False
        PROFILER.disable()
        PROFILER.reset()
        TIMESERIES.stop()
        TIMESERIES.reset()
        DECISIONS.disable()
        DECISIONS.reset()

    clean()
    yield
    clean()
