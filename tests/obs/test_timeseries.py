"""Metric time series: recorder lifecycle, tracks, counter events."""

import time

from repro.obs import (
    METRICS,
    TIMESERIES,
    TimeseriesRecorder,
    counter_track_events,
)


# ----------------------------------------------------------------------
# Recorder lifecycle
# ----------------------------------------------------------------------
def test_idle_recorder_owns_no_thread_and_no_points():
    recorder = TimeseriesRecorder()
    assert recorder.thread is None
    assert not recorder.enabled
    assert recorder.points() == []
    assert recorder.summary() is None


def test_stop_takes_a_final_sample_even_for_fast_runs():
    recorder = TimeseriesRecorder()
    recorder.start(interval=60.0)  # never fires on its own
    try:
        METRICS.counter("ts.unit.fast").inc(3)
    finally:
        recorder.stop()
    assert recorder.thread is None
    points = recorder.points()
    assert len(points) == 1
    t, values = points[0]
    assert t >= 0
    assert values["ts.unit.fast"] == 3


def test_stop_without_start_records_nothing():
    recorder = TimeseriesRecorder()
    recorder.stop()
    assert recorder.points() == []


def test_periodic_sampling_accumulates_points():
    recorder = TimeseriesRecorder()
    recorder.start(interval=0.02)
    try:
        METRICS.counter("ts.unit.slow").inc(1)
        deadline = time.perf_counter() + 2.0
        while len(recorder.points()) < 3:
            assert time.perf_counter() < deadline, "sampler stalled"
            time.sleep(0.01)
    finally:
        recorder.stop()
    assert len(recorder.points()) >= 3
    # Timestamps are monotone relative to start().
    times = [t for t, _ in recorder.points()]
    assert times == sorted(times)


def test_invalid_interval_rejected():
    recorder = TimeseriesRecorder()
    try:
        recorder.start(interval=0)
    except ValueError:
        pass
    else:
        raise AssertionError("interval=0 must raise")
    assert recorder.thread is None


def test_reset_drops_points():
    recorder = TimeseriesRecorder()
    recorder.start(interval=60.0)
    recorder.stop()
    assert recorder.points()
    recorder.reset()
    assert recorder.points() == []
    assert recorder.summary() is None


# ----------------------------------------------------------------------
# Tracks and summaries
# ----------------------------------------------------------------------
def test_counter_tracks_zero_fill_late_counters():
    recorder = TimeseriesRecorder()
    recorder._t0 = time.perf_counter()
    recorder.sample_now()            # before the counter exists
    METRICS.counter("ts.unit.late").inc(5)
    recorder.sample_now()
    track = recorder.counter_tracks()["ts.unit.late"]
    assert [value for _, value in track] == [0, 5]


def test_summary_reports_first_last_peak():
    recorder = TimeseriesRecorder()
    recorder.interval = 0.5
    recorder._t0 = time.perf_counter()
    name = "ts.unit.peaky"
    METRICS.counter(name).inc(1)
    recorder.sample_now()
    METRICS.counter(name).inc(9)
    recorder.sample_now()
    summary = recorder.summary()
    assert summary["samples"] == 2
    assert summary["interval_seconds"] == 0.5
    assert summary["duration_seconds"] >= 0
    assert summary["counters"][name] == {
        "first": 1, "last": 10, "peak": 10,
    }


# ----------------------------------------------------------------------
# Trace-event export
# ----------------------------------------------------------------------
def test_counter_track_events_shape():
    events = counter_track_events(
        {"a.b": [(0.0, 0), (0.5, 2)]}, pid=7
    )
    assert len(events) == 2
    for event in events:
        assert event["ph"] == "C"
        assert event["name"] == "a.b"
        assert event["pid"] == 7
        assert "value" in event["args"]
    assert events[1]["ts"] == 500_000.0  # seconds -> microseconds
    assert counter_track_events(None) == []
    assert counter_track_events({}) == []


# ----------------------------------------------------------------------
# Process-global singleton
# ----------------------------------------------------------------------
def test_global_recorder_starts_stopped():
    assert TIMESERIES.thread is None
    assert not TIMESERIES.enabled


def test_global_recorder_sees_global_metrics():
    METRICS.reset()
    TIMESERIES.start(interval=60.0)
    try:
        METRICS.counter("ts.unit.global").inc(2)
    finally:
        TIMESERIES.stop()
    summary = TIMESERIES.summary()
    assert summary["counters"]["ts.unit.global"]["last"] == 2
