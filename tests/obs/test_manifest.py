"""Run-manifest schema: build, validate, golden-file stability."""

import json
from pathlib import Path

from repro.obs import (
    SCHEMA_VERSION,
    build_manifest,
    catalog_digest,
    text_digest,
    validate_manifest,
    write_manifest,
)

GOLDEN = Path(__file__).with_name("golden_manifest.json")


def _build():
    return build_manifest(
        command="figure",
        config={"scenario": "shared", "queries": "Q1"},
        seeds={"monte_carlo": 0},
        catalog_sha="ab" * 32,
        result_digests={"figure_csv": "cd" * 32},
        metrics={"counters": {}, "gauges": {}, "histograms": {}},
        trace=None,
        wall_seconds=1.0,
        cpu_seconds=0.5,
    )


def test_built_manifest_validates_cleanly():
    assert validate_manifest(_build()) == []


def test_golden_manifest_validates_cleanly():
    """The checked-in schema example must stay valid forever (or the
    schema version must be bumped)."""
    golden = json.loads(GOLDEN.read_text())
    assert golden["schema_version"] == SCHEMA_VERSION
    assert validate_manifest(golden) == []


def test_schema_matches_golden_field_set():
    """Adding/removing top-level fields must update the golden file
    (and, for consumers, SCHEMA_VERSION)."""
    golden = json.loads(GOLDEN.read_text())
    assert set(_build()) == set(golden)


def test_missing_field_is_an_error():
    manifest = _build()
    del manifest["result_digests"]
    assert validate_manifest(manifest) == [
        "missing field: result_digests"
    ]


def test_unknown_field_is_an_error():
    manifest = _build()
    manifest["vendor_extension"] = {}
    assert validate_manifest(manifest) == [
        "unknown field: vendor_extension"
    ]


def test_wrong_types_and_bad_spans_are_reported():
    manifest = _build()
    manifest["timing"] = {"wall_seconds": "fast"}
    manifest["trace"] = [{"name": 3}]
    errors = validate_manifest(manifest)
    assert "timing.wall_seconds must be a number" in errors
    assert "timing.cpu_seconds must be a number" in errors
    assert any("trace[0]" in error for error in errors)


def test_tasks_field_defaults_and_validates():
    manifest = _build()
    assert manifest["tasks"] == {
        "planned": 0, "completed": 0, "resumed": 0, "retried": 0,
        "failed": [],
    }
    manifest["tasks"] = {
        "planned": 3, "completed": 2, "resumed": 1, "retried": 4,
        "failed": [
            {"label": "figure[2]", "error": "boom", "attempts": 3}
        ],
    }
    assert validate_manifest(manifest) == []


def test_malformed_tasks_field_is_reported():
    manifest = _build()
    manifest["tasks"] = {
        "planned": "three", "completed": 0, "resumed": 0,
        "retried": 0, "failed": [{"label": 7}],
    }
    errors = validate_manifest(manifest)
    assert "tasks.planned must be an integer" in errors
    assert "tasks.failed[0].label must be a string" in errors
    assert "tasks.failed[0].error must be a string" in errors
    assert "tasks.failed[0].attempts must be an integer" in errors


def test_profile_and_timeseries_default_to_null():
    manifest = _build()
    assert manifest["profile"] is None
    assert manifest["timeseries"] is None
    assert validate_manifest(manifest) == []


def test_profile_and_timeseries_blocks_validate():
    manifest = _build()
    manifest["profile"] = {
        "hz": 101, "duration_seconds": 1.0, "samples": 42,
        "distinct_stacks": 3,
        "top": [{
            "frame": "f (repro/x.py:1)",
            "total_samples": 42, "self_samples": 40,
        }],
    }
    manifest["timeseries"] = {
        "interval_seconds": 0.25, "samples": 4,
        "duration_seconds": 1.0,
        "counters": {"a.b": {"first": 0, "last": 2, "peak": 2}},
    }
    assert validate_manifest(manifest) == []


def test_malformed_profile_and_timeseries_are_reported():
    manifest = _build()
    manifest["profile"] = {"hz": "fast", "top": {}}
    manifest["timeseries"] = {"samples": 1.5}
    errors = validate_manifest(manifest)
    assert "profile.hz must be an integer" in errors
    assert "profile.top must be a list" in errors
    assert "timeseries.samples must be an integer" in errors
    assert "timeseries.counters must be an object" in errors


def test_future_schema_version_is_rejected():
    manifest = _build()
    manifest["schema_version"] = SCHEMA_VERSION + 1
    assert any(
        "schema_version" in error
        for error in validate_manifest(manifest)
    )


def test_non_object_manifest():
    assert validate_manifest([1, 2]) == [
        "manifest must be a JSON object"
    ]


def test_write_manifest_is_stable_sorted_json(tmp_path):
    path = write_manifest(_build(), tmp_path / "m.json")
    text = path.read_text()
    data = json.loads(text)
    assert validate_manifest(data) == []
    assert text == json.dumps(data, indent=2, sort_keys=True) + "\n"


def test_digest_helpers():
    assert text_digest("x") == text_digest("x")
    assert text_digest("x") != text_digest("y")
    assert catalog_digest({"a": 1}) == catalog_digest({"a": 1})
    assert catalog_digest({"a": 1}) != catalog_digest({"a": 2})
