"""Bench telemetry: record schema, recorder, and the regression gate."""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRecorder,
    build_bench_record,
    compare_bench_records,
    load_bench_record,
    render_bench_comparison,
    render_bench_record,
    validate_bench_record,
    write_bench_record,
)

STATS = {
    "median_seconds": 1.0,
    "iqr_seconds": 0.1,
    "rounds": 3,
    "mean_seconds": 1.05,
    "min_seconds": 0.9,
    "max_seconds": 1.2,
}


def _record(**medians):
    return build_bench_record(
        "demo",
        {
            name: dict(STATS, median_seconds=median)
            for name, median in medians.items()
        },
    )


def test_built_record_validates_cleanly():
    record = _record(test_a=1.0)
    assert validate_bench_record(record) == []
    assert record["bench_schema_version"] == BENCH_SCHEMA_VERSION
    assert record["benchmark"] == "demo"
    assert set(record["metrics"]) == {
        "counters", "gauges", "histograms"
    }


def test_validation_rejects_missing_unknown_and_bad_fields():
    record = _record(test_a=1.0)
    del record["environment"]
    record["surprise"] = 1
    record["results"]["test_a"]["median_seconds"] = "fast"
    errors = validate_bench_record(record)
    assert "missing field: environment" in errors
    assert "unknown field: surprise" in errors
    assert any("median_seconds" in error for error in errors)
    assert validate_bench_record([]) == [
        "bench record must be a JSON object"
    ]


def test_future_schema_version_is_rejected():
    record = _record(test_a=1.0)
    record["bench_schema_version"] = BENCH_SCHEMA_VERSION + 1
    assert any(
        "bench_schema_version" in error
        for error in validate_bench_record(record)
    )


def test_write_and_load_roundtrip(tmp_path):
    path = write_bench_record(_record(test_a=1.0), tmp_path / "b.json")
    loaded = load_bench_record(path)
    assert loaded["results"]["test_a"]["median_seconds"] == 1.0


def test_load_rejects_corrupt_and_invalid(tmp_path):
    missing = tmp_path / "missing.json"
    with pytest.raises(ValueError, match="cannot read"):
        load_bench_record(missing)
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError, match="cannot read"):
        load_bench_record(bad)
    invalid = tmp_path / "invalid.json"
    invalid.write_text(json.dumps({"benchmark": "x"}))
    with pytest.raises(ValueError, match="invalid bench record"):
        load_bench_record(invalid)


def test_self_comparison_is_clean():
    record = _record(test_a=1.0, test_b=0.01)
    comparison = compare_bench_records(record, record)
    assert comparison.ok
    assert [d.status for d in comparison.deltas] == ["ok", "ok"]
    assert "OK" in render_bench_comparison(comparison)


def test_twofold_slowdown_is_a_regression():
    baseline = _record(test_a=1.0)
    slower = _record(test_a=2.0)
    comparison = compare_bench_records(baseline, slower)
    assert not comparison.ok
    (delta,) = comparison.regressions
    assert delta.ratio == pytest.approx(2.0)
    rendered = render_bench_comparison(comparison)
    assert "REGRESSION" in rendered
    assert "2.00x" in rendered


def test_threshold_is_configurable():
    baseline = _record(test_a=1.0)
    slightly = _record(test_a=1.1)
    assert compare_bench_records(baseline, slightly).ok
    assert not compare_bench_records(
        baseline, slightly, threshold=0.05
    ).ok
    # Faster beyond the threshold is an improvement, never a failure.
    faster = _record(test_a=0.5)
    comparison = compare_bench_records(baseline, faster)
    assert comparison.ok
    assert comparison.deltas[0].status == "improvement"
    with pytest.raises(ValueError):
        compare_bench_records(baseline, baseline, threshold=-1)


def test_added_and_removed_tests_never_gate():
    baseline = _record(test_a=1.0, test_gone=1.0)
    current = _record(test_a=1.0, test_new=9.0)
    comparison = compare_bench_records(baseline, current)
    assert comparison.ok
    statuses = {d.name: d.status for d in comparison.deltas}
    assert statuses == {
        "test_a": "ok", "test_gone": "removed", "test_new": "added"
    }


def test_differing_test_sets_report_symmetric_difference():
    """A baseline with a different test set must compare cleanly and
    surface the symmetric difference, not crash."""
    baseline = _record(test_a=1.0, test_gone=1.0, test_also_gone=2.0)
    current = _record(test_a=1.0, test_new=9.0)
    comparison = compare_bench_records(baseline, current)
    assert comparison.ok
    rendered = render_bench_comparison(comparison)
    assert "test sets differ: 1 only in current, 2 only in baseline" \
        in rendered
    assert "+ test_new" in rendered
    assert "- test_gone" in rendered
    assert "- test_also_gone" in rendered
    # Identical sets render no difference section.
    same = render_bench_comparison(
        compare_bench_records(current, current)
    )
    assert "test sets differ" not in same


def test_stats_missing_median_degrade_to_uncomparable():
    """A hand-edited or older-schema baseline without medians must not
    raise a KeyError — the test becomes uncomparable, never gating."""
    baseline = _record(test_a=1.0, test_b=1.0)
    del baseline["results"]["test_a"]["median_seconds"]
    current = _record(test_a=2.0, test_b=2.0, test_new=1.0)
    del current["results"]["test_new"]["median_seconds"]
    comparison = compare_bench_records(baseline, current)
    statuses = {d.name: d.status for d in comparison.deltas}
    assert statuses == {
        "test_a": "ok", "test_b": "regression", "test_new": "added"
    }
    deltas = {d.name: d for d in comparison.deltas}
    assert deltas["test_a"].baseline_median is None
    assert deltas["test_a"].ratio is None
    assert deltas["test_new"].current_median is None
    # The degraded comparison still renders.
    assert "test_a" in render_bench_comparison(comparison)


def test_render_record_lists_tests_and_extras():
    record = _record(test_a=1.0)
    record["extras"]["probe_rate"] = {"speedup": 6.4}
    rendered = render_bench_record(record)
    assert "test_a" in rendered
    assert "probe_rate" in rendered
    empty = build_bench_record("empty", {})
    assert "(none recorded)" in render_bench_record(empty)


# ----------------------------------------------------------------------
# The recorder behind the pytest plugin
# ----------------------------------------------------------------------
def test_recorder_flushes_one_record_per_group(tmp_path):
    recorder = BenchRecorder(out_dir=tmp_path)
    recorder.record("alpha", "test_one", STATS)
    recorder.record("alpha", "test_two", STATS)
    recorder.record("beta", "test_three", STATS)
    recorder.add_extra("alpha", "workload", "Q5/split")
    written = recorder.flush()
    assert sorted(p.name for p in written) == [
        "BENCH_alpha.json", "BENCH_beta.json"
    ]
    alpha = load_bench_record(tmp_path / "BENCH_alpha.json")
    assert sorted(alpha["results"]) == ["test_one", "test_two"]
    assert alpha["extras"] == {"workload": "Q5/split"}
    beta = load_bench_record(tmp_path / "BENCH_beta.json")
    assert beta["extras"] == {}
    # A second flush writes nothing: state was drained.
    assert recorder.flush() == []


def test_recorder_rejects_incomplete_stats(tmp_path):
    recorder = BenchRecorder(out_dir=tmp_path)
    with pytest.raises(ValueError, match="iqr_seconds"):
        recorder.record("alpha", "test_one", {"median_seconds": 1.0})


def test_recorder_honours_bench_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "out"))
    recorder = BenchRecorder()
    recorder.record("alpha", "test_one", STATS)
    (path,) = recorder.flush()
    assert path == tmp_path / "out" / "BENCH_alpha.json"
    assert path.exists()


def test_legacy_env_var_redirects_with_deprecation(
    tmp_path, monkeypatch
):
    target = tmp_path / "legacy.json"
    monkeypatch.setenv("OLD_BENCH_VAR", str(target))
    recorder = BenchRecorder(
        out_dir=tmp_path, legacy_env={"alpha": "OLD_BENCH_VAR"}
    )
    recorder.record("alpha", "test_one", STATS)
    with pytest.warns(DeprecationWarning, match="OLD_BENCH_VAR"):
        (path,) = recorder.flush()
    assert path == target
    assert target.exists()


def test_legacy_env_var_unset_uses_default_path(tmp_path, monkeypatch):
    monkeypatch.delenv("OLD_BENCH_VAR", raising=False)
    recorder = BenchRecorder(
        out_dir=tmp_path, legacy_env={"alpha": "OLD_BENCH_VAR"}
    )
    recorder.record("alpha", "test_one", STATS)
    (path,) = recorder.flush()
    assert path == tmp_path / "BENCH_alpha.json"
