"""Memory profiling: sampler lifecycle and span-boundary stamping."""

import tracemalloc

import pytest

from repro.obs import MEMPROF, TRACER, span
from repro.obs.memprof import MemoryProfiler, rss_kb


@pytest.fixture(autouse=True)
def _memprof_off():
    yield
    MEMPROF.disable()


def test_rss_is_positive_on_linux():
    resident = rss_kb()
    assert resident is None or resident > 0


def test_enable_starts_tracemalloc_and_disable_stops_it():
    profiler = MemoryProfiler()
    assert not profiler.enabled
    already_tracing = tracemalloc.is_tracing()
    profiler.enable()
    assert profiler.enabled
    assert tracemalloc.is_tracing()
    profiler.disable()
    assert not profiler.enabled
    # Only stops tracemalloc if it was the one to start it.
    assert tracemalloc.is_tracing() == already_tracing


def test_disable_leaves_foreign_tracemalloc_running():
    foreign = not tracemalloc.is_tracing()
    if foreign:
        tracemalloc.start()
    try:
        profiler = MemoryProfiler()
        profiler.enable()
        profiler.disable()
        assert tracemalloc.is_tracing()
    finally:
        if foreign:
            tracemalloc.stop()


def test_sample_reports_kib_readings():
    profiler = MemoryProfiler()
    profiler.enable()
    try:
        ballast = [0.0] * 50_000  # ensure tracemalloc sees something
        sampled = profiler.sample()
        assert ballast
    finally:
        profiler.disable()
    assert sampled["mem_traced_kb"] > 0
    assert (
        sampled["mem_traced_peak_kb"] >= sampled["mem_traced_kb"]
    )
    if "mem_rss_kb" in sampled:
        assert sampled["mem_rss_kb"] > 0


def test_spans_are_stamped_only_when_enabled():
    TRACER.enabled = True
    with span("plain"):
        pass
    MEMPROF.enable()
    with span("profiled"):
        with span("nested"):
            pass
    MEMPROF.disable()
    plain, profiled = TRACER.export()
    assert "mem_traced_kb" not in (plain.get("attrs") or {})
    for node in (profiled, profiled["children"][0]):
        attrs = node["attrs"]
        assert "mem_traced_kb" in attrs
        assert "mem_traced_peak_kb" in attrs
        assert attrs["mem_traced_peak_kb"] >= attrs["mem_traced_kb"]


def test_memprof_report_renders_memory_columns():
    from repro.obs.report import render_manifest

    manifest = {
        "command": "figure",
        "created_unix": 0,
        "timing": {"wall_seconds": 1.0, "cpu_seconds": 1.0},
        "trace": [{
            "name": "cli.figure",
            "wall_seconds": 1.0,
            "cpu_seconds": 1.0,
            "attrs": {
                "mem_rss_kb": 2048.0,
                "mem_traced_peak_kb": 512.0,
                "mem_traced_kb": 100.0,
            },
            "children": [],
        }],
        "metrics": {},
    }
    rendered = render_manifest(manifest)
    assert "rss" in rendered
    assert "py-peak" in rendered
    assert "2.0MB" in rendered
    assert "512KB" in rendered
    # The raw attrs are folded into columns, not echoed inline.
    assert "mem_traced_kb=" not in rendered
