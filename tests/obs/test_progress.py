"""Live progress: activation rules, meter format, TTY behaviour."""

import io

import pytest

from repro.obs.progress import PROGRESS, ProgressReporter, ProgressTask
from repro.obs.progress import _NULL_TASK


class _Tty(io.StringIO):
    def isatty(self):
        return True


@pytest.fixture(autouse=True)
def _reset_global_reporter():
    yield
    PROGRESS.configure(mode="auto", log_level="warning", stream=None)


def test_off_mode_is_never_active():
    reporter = ProgressReporter()
    reporter.configure(mode="off", log_level="info", stream=_Tty())
    assert not reporter.active()
    assert reporter.start("fig6", 10) is _NULL_TASK


def test_on_mode_renders_even_into_pipes():
    stream = io.StringIO()
    reporter = ProgressReporter()
    reporter.configure(mode="on", stream=stream)
    assert reporter.active()
    task = reporter.start("fig6 [split]", 2)
    assert isinstance(task, ProgressTask)
    task.advance()
    task.advance()
    task.finish()
    lines = [l for l in stream.getvalue().splitlines() if l]
    assert lines[0].startswith("fig6 [split] 0/2 tasks")
    assert any(l.startswith("fig6 [split] 2/2 tasks") for l in lines)


def test_auto_mode_needs_tty_and_verbose_logging():
    reporter = ProgressReporter()
    # TTY but default WARNING level: progress is chatter, stay silent.
    reporter.configure(mode="auto", log_level="warning", stream=_Tty())
    assert not reporter.active()
    # Verbose but piped: stay silent.
    reporter.configure(mode="auto", log_level="info", stream=io.StringIO())
    assert not reporter.active()
    # Verbose and a TTY: render.
    reporter.configure(mode="auto", log_level="info", stream=_Tty())
    assert reporter.active()


def test_unknown_mode_is_rejected():
    with pytest.raises(ValueError, match="unknown progress mode"):
        ProgressReporter().configure(mode="loud")


def test_zero_total_hands_back_the_null_task():
    reporter = ProgressReporter()
    reporter.configure(mode="on", stream=io.StringIO())
    assert reporter.start("empty", 0) is _NULL_TASK


def test_null_task_is_inert():
    _NULL_TASK.advance()
    _NULL_TASK.advance(5)
    _NULL_TASK.finish()


def test_render_line_format_and_eta():
    task = ProgressTask("fig6 [shared]", 66, io.StringIO(), tty=False)
    task.done = 14
    task._started -= 4.375  # pretend 4.375s elapsed -> 3.2 tasks/s
    line = task.render_line()
    assert line.startswith("fig6 [shared] 14/66 tasks · 3.2 tasks/s · eta ")
    assert line.endswith("s")
    # Before any completion the rate gives no ETA.
    fresh = ProgressTask("x", 5, io.StringIO(), tty=False)
    assert fresh.render_line().endswith("eta ?")


def test_tty_meter_overwrites_and_clears():
    stream = _Tty()
    task = ProgressTask("fig5", 1, stream, tty=True)
    task.advance()
    task.finish()
    output = stream.getvalue()
    assert "\r" in output
    assert "\n" not in output  # never commits a line to a TTY
    # After finish the line is blanked out.
    assert output.endswith("\r")


def test_unknown_total_renders_count_and_rate_without_eta():
    task = ProgressTask("census", None, io.StringIO(), tty=False)
    task.done = 500
    task._started -= 100.0  # 5 tasks/s
    line = task.render_line()
    assert line.startswith("census 500 tasks · 5.0 tasks/s")
    assert "eta" not in line
    assert "500/" not in line  # no denominator to show


def test_unknown_total_still_starts_a_live_task():
    stream = io.StringIO()
    reporter = ProgressReporter()
    reporter.configure(mode="on", stream=stream)
    task = reporter.start("census", None)
    assert isinstance(task, ProgressTask)
    assert task is not _NULL_TASK
    task.advance()
    task.finish()
    assert "census" in stream.getvalue()


def test_long_etas_use_minute_and_hour_units():
    from repro.obs.progress import _format_eta

    assert _format_eta(42.4) == "42s"
    assert _format_eta(96) == "1m36s"
    assert _format_eta(3 * 3600 + 5 * 60) == "3h05m"
    assert _format_eta(-1) == "?"
    assert _format_eta(float("nan")) == "?"
