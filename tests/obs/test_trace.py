"""Span-tree tracing: nesting, timing, and the zero-cost disabled path."""

import time

from repro.obs import TRACER, Span, span
from repro.obs.trace import _NULL_SPAN


def test_spans_nest_by_lexical_scope():
    TRACER.enable()
    with span("outer", kind="test"):
        with span("inner.a"):
            pass
        with span("inner.b"):
            with span("leaf"):
                pass
    assert len(TRACER.roots) == 1
    outer = TRACER.roots[0]
    assert outer.name == "outer"
    assert outer.attrs == {"kind": "test"}
    assert [child.name for child in outer.children] == [
        "inner.a", "inner.b"
    ]
    assert outer.children[1].children[0].name == "leaf"


def test_timing_is_monotonic_and_contains_children():
    TRACER.enable()
    with span("outer"):
        with span("inner"):
            time.sleep(0.01)
    outer = TRACER.roots[0]
    inner = outer.children[0]
    assert inner.wall_seconds >= 0.01
    assert outer.wall_seconds >= inner.wall_seconds
    assert outer.cpu_seconds >= 0.0
    # The child's interval lies inside the parent's.
    assert outer.wall_start <= inner.wall_start
    assert inner.wall_end <= outer.wall_end


def test_attributes_settable_during_span():
    TRACER.enable()
    with span("work", planned=3) as current:
        current.set(done=2, aborted=False)
    assert TRACER.roots[0].attrs == {
        "planned": 3, "done": 2, "aborted": False
    }


def test_disabled_tracer_allocates_nothing():
    assert not TRACER.enabled
    handles = {id(span("a")), id(span("b", x=1)), id(TRACER.span("c"))}
    # Every disabled call hands back the same shared null singleton.
    assert handles == {id(_NULL_SPAN)}
    with span("ignored") as current:
        current.set(anything=1)
    assert TRACER.roots == []


def test_current_tracks_innermost_open_span():
    TRACER.enable()
    assert TRACER.current is None
    with span("outer") as outer:
        assert TRACER.current is outer
        with span("inner") as inner:
            assert TRACER.current is inner
        assert TRACER.current is outer
    assert TRACER.current is None


def test_export_roundtrip():
    TRACER.enable()
    with span("root", level=1):
        with span("child"):
            pass
    exported = TRACER.export()
    rebuilt = Span.from_dict(exported[0])
    assert rebuilt.name == "root"
    assert rebuilt.attrs == {"level": 1}
    assert rebuilt.children[0].name == "child"
    assert rebuilt.wall_seconds == exported[0]["wall_seconds"]


def test_graft_attaches_worker_subtrees_under_current_span():
    TRACER.enable()
    worker = Span("parallel.task", {"index": 0})
    worker.children.append(Span("figure.query"))
    with span("cli.figure"):
        TRACER.graft([worker.to_dict()])
    root = TRACER.roots[0]
    assert [c.name for c in root.children] == ["parallel.task"]
    assert root.children[0].children[0].name == "figure.query"


def test_graft_is_a_noop_while_disabled():
    TRACER.graft([Span("x").to_dict()])
    assert TRACER.roots == []


def test_reset_keeps_enabled_flag():
    TRACER.enable()
    with span("x"):
        pass
    TRACER.reset()
    assert TRACER.roots == [] and TRACER.enabled
