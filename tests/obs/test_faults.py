"""Fault injection, retry policy, backoff and the task time limit."""

import time

import pytest

from repro.obs.faults import (
    FAULT_KINDS,
    KILL_EXIT_CODE,
    FaultPlan,
    FaultSpecError,
    InjectedFault,
    RetryPolicy,
    TaskTimeout,
    apply_fault,
    backoff_delay,
    fault_roll,
    time_limit,
)


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------
def test_parse_full_spec():
    plan = FaultPlan.parse("kill:0.2,raise:0.1,hang:0.05,hang=30",
                           seed=7)
    assert dict(plan.rates) == {
        "raise": 0.1, "hang": 0.05, "kill": 0.2,
    }
    assert plan.seed == 7
    assert plan.hang_seconds == 30.0


def test_parse_canonical_roundtrip():
    plan = FaultPlan.parse("kill:0.2,raise:0.1,hang=30")
    again = FaultPlan.parse(plan.describe())
    assert again.rates == plan.rates
    assert again.hang_seconds == plan.hang_seconds


def test_parse_empty_spec_is_inert():
    plan = FaultPlan.parse("")
    assert plan.rates == ()
    assert all(
        plan.decide(index, attempt) is None
        for index in range(10) for attempt in range(3)
    )


@pytest.mark.parametrize("spec", [
    "bogus:0.5",          # unknown kind
    "raise",              # no rate
    "raise:x",            # non-numeric rate
    "raise:1.5",          # rate out of range
    "raise:-0.1",         # negative rate
    "raise:0.6,kill:0.6",  # rates sum past 1
    "raise:0.1,raise:0.2",  # duplicate kind
    "hang=0",             # non-positive hang bound
    "hang=abc",           # non-numeric hang bound
])
def test_parse_rejects_bad_specs(spec):
    with pytest.raises(FaultSpecError):
        FaultPlan.parse(spec)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_fault_roll_is_pure_and_uniformish():
    rolls = [fault_roll(0, "fault", i, 0) for i in range(200)]
    assert rolls == [fault_roll(0, "fault", i, 0) for i in range(200)]
    assert all(0.0 <= r < 1.0 for r in rolls)
    # Different seeds/salts/attempts decorrelate the stream.
    assert rolls != [fault_roll(1, "fault", i, 0) for i in range(200)]
    assert rolls != [fault_roll(0, "salty", i, 0) for i in range(200)]
    assert rolls != [fault_roll(0, "fault", i, 1) for i in range(200)]


def test_decide_is_deterministic_per_seed():
    plan = FaultPlan.parse("kill:0.3,raise:0.2", seed=5)
    table = [
        [plan.decide(index, attempt) for attempt in range(4)]
        for index in range(50)
    ]
    again = FaultPlan.parse("kill:0.3,raise:0.2", seed=5)
    assert table == [
        [again.decide(index, attempt) for attempt in range(4)]
        for index in range(50)
    ]
    flat = [kind for row in table for kind in row]
    assert set(flat) <= set(FAULT_KINDS) | {None}
    # With 200 draws at 50% total rate, some of each must appear.
    assert "kill" in flat and "raise" in flat and None in flat


def test_decide_rate_one_always_fires():
    plan = FaultPlan.parse("raise:1.0")
    assert all(
        plan.decide(index, attempt) == "raise"
        for index in range(20) for attempt in range(3)
    )


def test_backoff_schedule_is_deterministic_and_bounded():
    schedule = [
        backoff_delay(a, base=0.1, cap=2.0, seed=9, task_index=4)
        for a in range(1, 8)
    ]
    assert schedule == [
        backoff_delay(a, base=0.1, cap=2.0, seed=9, task_index=4)
        for a in range(1, 8)
    ]
    for attempt, delay in enumerate(schedule, start=1):
        raw = min(2.0, 0.1 * 2 ** (attempt - 1))
        assert 0.5 * raw <= delay < raw
    # A different seed produces a different jitter pattern.
    assert schedule != [
        backoff_delay(a, base=0.1, cap=2.0, seed=10, task_index=4)
        for a in range(1, 8)
    ]


def test_backoff_rejects_attempt_zero():
    with pytest.raises(ValueError, match="counts from 1"):
        backoff_delay(0)


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_policy_max_attempts_by_mode():
    assert RetryPolicy(on_error="abort", retries=5).max_attempts == 1
    assert RetryPolicy(on_error="retry", retries=3).max_attempts == 4
    assert RetryPolicy(on_error="skip", retries=0).max_attempts == 1


def test_policy_delay_matches_backoff_function():
    policy = RetryPolicy(
        on_error="retry", retries=3, backoff_base=0.2,
        backoff_cap=5.0, seed=11,
    )
    assert policy.delay(2, 1) == backoff_delay(
        1, base=0.2, cap=5.0, seed=11, task_index=2
    )


@pytest.mark.parametrize("kwargs", [
    {"on_error": "explode"},
    {"retries": -1},
    {"task_timeout": 0.0},
    {"task_timeout": -2.0},
    {"backoff_base": -0.1},
])
def test_policy_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# apply_fault / time_limit
# ----------------------------------------------------------------------
def test_apply_fault_raise():
    with pytest.raises(InjectedFault):
        apply_fault("raise")


def test_apply_fault_kill_degrades_in_process():
    with pytest.raises(InjectedFault, match="degraded"):
        apply_fault("kill", allow_kill=False)


def test_apply_fault_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        apply_fault("segfault")


def test_kill_exit_code_is_distinctive():
    assert KILL_EXIT_CODE == 77


def test_time_limit_interrupts_a_hang():
    started = time.monotonic()
    with pytest.raises(TaskTimeout):
        with time_limit(0.2):
            apply_fault("hang", hang_seconds=30.0)
    assert time.monotonic() - started < 5.0


def test_time_limit_none_is_a_noop():
    with time_limit(None):
        pass
    with time_limit(0):
        pass


def test_time_limit_disarms_after_the_body():
    with time_limit(0.2):
        pass
    time.sleep(0.3)  # would raise if the timer were still armed
