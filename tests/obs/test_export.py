"""Trace Event export: layout, track mapping, schema validation."""

import json

from repro.obs import TRACER, span
from repro.obs.export import (
    MAIN_TRACK,
    event_names,
    span_names,
    trace_events,
    validate_trace_events,
    write_trace_events,
)


def _tree():
    """A manifest-style span tree with a grafted worker sub-tree."""
    return [
        {
            "name": "cli.figure",
            "wall_seconds": 3.0,
            "cpu_seconds": 2.5,
            "attrs": {"scenario": "fig5"},
            "children": [
                {
                    "name": "parallel.task",
                    "wall_seconds": 1.0,
                    "cpu_seconds": 0.9,
                    "attrs": {"index": 0},
                    "children": [
                        {
                            "name": "figure.query",
                            "wall_seconds": 0.8,
                            "cpu_seconds": 0.7,
                            "attrs": {},
                            "children": [],
                        },
                    ],
                },
                {
                    "name": "parallel.task",
                    "wall_seconds": 1.5,
                    "cpu_seconds": 1.4,
                    "attrs": {"index": 1},
                    "children": [],
                },
            ],
        },
    ]


def test_events_carry_trace_event_fields():
    events = trace_events(_tree())
    assert validate_trace_events(events) == []
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == 4
    root = complete[0]
    assert root["name"] == "cli.figure"
    assert root["ts"] == 0.0
    assert root["dur"] == 3.0e6
    assert root["pid"] == 1
    assert root["tid"] == MAIN_TRACK
    assert root["args"]["scenario"] == "fig5"
    assert root["args"]["cpu_seconds"] == 2.5


def test_task_spans_get_distinct_tracks_inherited_by_children():
    events = trace_events(_tree())
    by_name = {}
    for event in events:
        if event["ph"] == "X":
            by_name.setdefault(event["name"], []).append(event)
    task_tids = sorted(e["tid"] for e in by_name["parallel.task"])
    assert task_tids == [1, 2]
    # The worker's grafted child renders on its task's track.
    (child,) = by_name["figure.query"]
    assert child["tid"] == 1


def test_siblings_are_laid_out_sequentially():
    complete = [
        e for e in trace_events(_tree()) if e["ph"] == "X"
    ]
    first_task, second_task = (
        e for e in complete if e["name"] == "parallel.task"
    )
    assert first_task["ts"] == 0.0
    assert second_task["ts"] == first_task["dur"]
    # Nesting is preserved: children fit inside their parent.
    root = complete[0]
    for event in complete[1:]:
        assert event["ts"] + event["dur"] <= root["dur"] + 1e-9


def test_metadata_names_process_and_every_track():
    events = trace_events(_tree())
    metadata = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in metadata} == {
        "process_name", "thread_name"
    }
    thread_names = {
        e["tid"]: e["args"]["name"]
        for e in metadata
        if e["name"] == "thread_name"
    }
    assert thread_names == {0: "main", 1: "task 0", 2: "task 1"}


def test_empty_trace_yields_only_process_metadata():
    events = trace_events(None)
    assert validate_trace_events(events) == []
    assert event_names(events) == set()
    assert [e["ph"] for e in events] == ["M", "M"]


def test_phase_set_round_trips():
    tree = _tree()
    assert event_names(trace_events(tree)) == span_names(tree)
    assert span_names(tree) == {
        "cli.figure", "parallel.task", "figure.query"
    }


def test_round_trip_from_live_tracer():
    TRACER.enabled = True
    with span("outer", kind="demo"):
        with span("inner"):
            pass
        with span("inner"):
            pass
    tree = TRACER.export()
    events = trace_events(tree)
    assert validate_trace_events(events) == []
    assert event_names(events) == {"outer", "inner"}


def test_validator_reports_malformed_events():
    assert validate_trace_events({"ph": "X"}) == [
        "trace must be a JSON array of events"
    ]
    errors = validate_trace_events([
        "not an object",
        {"ph": "B", "name": "bad-phase"},
        {"ph": "X", "name": 7, "pid": "one", "tid": 0},
    ])
    assert any("must be an object" in e for e in errors)
    assert any("ph must be" in e for e in errors)
    assert any("name must be a string" in e for e in errors)
    assert any("pid must be an integer" in e for e in errors)
    assert any("ts must be a number" in e for e in errors)


def test_write_trace_events_produces_loadable_json(tmp_path):
    path = write_trace_events(_tree(), tmp_path / "trace.json")
    data = json.loads(path.read_text())
    assert isinstance(data, list)
    assert validate_trace_events(data) == []
    assert event_names(data) == span_names(_tree())

def test_counter_events_validate_and_reject_malformed():
    good = {
        "name": "planindex.hits", "cat": "metric", "ph": "C",
        "ts": 1000.0, "pid": 1, "tid": 0, "args": {"value": 3},
    }
    assert validate_trace_events([good]) == []
    errors = validate_trace_events([
        {"name": "x", "ph": "C", "pid": 1, "tid": 0,
         "ts": "soon", "args": {"value": 1}},
        {"name": "y", "ph": "C", "pid": 1, "tid": 0,
         "ts": 1.0, "args": []},
    ])
    assert any("ts must be a number" in e for e in errors)
    assert any("args" in e for e in errors)


def test_write_trace_events_appends_counter_tracks(tmp_path):
    tracks = {"plancache.hits": [(0.0, 0), (0.5, 4)]}
    path = write_trace_events(
        _tree(), tmp_path / "trace.json", counter_tracks=tracks
    )
    data = json.loads(path.read_text())
    assert validate_trace_events(data) == []
    counters = [e for e in data if e.get("ph") == "C"]
    assert len(counters) == 2
    assert {e["name"] for e in counters} == {"plancache.hits"}
    # Span events still present alongside the counter track.
    assert event_names(data) >= span_names(_tree())
