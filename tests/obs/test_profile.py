"""Sampling profiler: lifecycle, merging, export, schema validation."""

import json
import threading
import time

from repro.obs import (
    PROFILER,
    SamplingProfiler,
    TRACER,
    build_speedscope,
    folded_lines,
    folded_path_for,
    span,
    validate_speedscope,
    write_folded,
    write_speedscope,
)


def _burn(seconds=0.25):
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(i * i for i in range(500))


# ----------------------------------------------------------------------
# Lifecycle / overhead-off contract
# ----------------------------------------------------------------------
def test_disabled_profiler_owns_no_thread():
    profiler = SamplingProfiler()
    assert profiler.thread is None
    assert not profiler.enabled
    assert profiler.sample_count == 0
    assert profiler.summary() is None


def test_enable_spawns_thread_disable_joins_it():
    profiler = SamplingProfiler()
    profiler.enable(500)
    try:
        assert profiler.thread is not None
        assert profiler.thread.is_alive()
        assert profiler.hz == 500
        _burn()
    finally:
        profiler.disable()
    assert profiler.thread is None
    assert profiler.sample_count > 0


def test_no_stray_sampler_thread_after_disable():
    profiler = SamplingProfiler()
    profiler.enable(500)
    profiler.disable()
    names = [t.name for t in threading.enumerate()]
    assert "repro-profile-sampler" not in names


def test_reset_drops_samples_but_keeps_running():
    profiler = SamplingProfiler()
    profiler.enable(500)
    try:
        _burn()
        assert profiler.sample_count > 0
        profiler.reset()
        # Still sampling: new samples accumulate after the reset.
        _burn()
        assert profiler.sample_count > 0
    finally:
        profiler.disable()


def test_invalid_hz_rejected():
    profiler = SamplingProfiler()
    try:
        profiler.enable(0)
    except ValueError:
        pass
    else:
        raise AssertionError("hz=0 must raise")
    assert profiler.thread is None


# ----------------------------------------------------------------------
# Sampled state: folded stacks, span attribution, merging
# ----------------------------------------------------------------------
def test_samples_name_the_hot_function():
    profiler = SamplingProfiler()
    profiler.enable(500)
    try:
        _burn()
    finally:
        profiler.disable()
    state = profiler.snapshot()
    assert state["hz"] == 500
    assert state["duration_seconds"] > 0
    all_frames = ";".join(state["stacks"])
    assert "_burn" in all_frames
    summary = profiler.summary(top=5)
    assert summary["samples"] == sum(state["stacks"].values())
    assert len(summary["top"]) <= 5
    assert summary["top"][0]["total_samples"] >= \
        summary["top"][0]["self_samples"]


def test_samples_attribute_to_the_open_span():
    TRACER.enabled = True
    profiler = SamplingProfiler()
    profiler.enable(500)
    try:
        with span("hot.phase"):
            _burn()
    finally:
        profiler.disable()
    stacks = profiler.snapshot()["stacks"]
    attributed = [s for s in stacks if s.startswith("span:hot.phase;")]
    assert attributed, sorted(stacks)[:5]
    # Span pseudo-frames never pollute the hot-function table.
    frames = [t["frame"] for t in profiler.summary()["top"]]
    assert not any(f.startswith("span:") for f in frames)


def test_merge_adds_counts_and_durations():
    profiler = SamplingProfiler()
    profiler.merge({
        "hz": 101, "duration_seconds": 1.0,
        "stacks": {"a;b": 3, "a;c": 1},
    })
    profiler.merge({
        "hz": 101, "duration_seconds": 0.5,
        "stacks": {"a;b": 2, "d": 7},
    })
    state = profiler.snapshot()
    assert state["stacks"] == {"a;b": 5, "a;c": 1, "d": 7}
    assert state["duration_seconds"] == 1.5
    assert profiler.merge(None) is None  # no-op


# ----------------------------------------------------------------------
# Export: speedscope + folded text
# ----------------------------------------------------------------------
_STATE = {
    "hz": 101,
    "duration_seconds": 2.0,
    "stacks": {"main;work;inner": 5, "main;work": 2, "main;idle": 1},
}


def test_build_speedscope_is_schema_valid():
    doc = build_speedscope(_STATE, name="unit")
    assert validate_speedscope(doc) == []
    (profile,) = doc["profiles"]
    assert profile["endValue"] == 8
    assert len(profile["samples"]) == len(profile["weights"]) == 3
    names = [f["name"] for f in doc["shared"]["frames"]]
    assert "main" in names and "inner" in names
    # Shared frames: "main" appears once despite three stacks.
    assert names.count("main") == 1


def test_validate_speedscope_rejects_broken_documents():
    assert validate_speedscope([]) != []
    doc = build_speedscope(_STATE)
    doc["profiles"][0]["endValue"] = 999
    assert any("endValue" in e for e in validate_speedscope(doc))
    doc = build_speedscope(_STATE)
    doc["profiles"][0]["samples"][0] = [10_000]
    assert any("out of range" in e for e in validate_speedscope(doc))
    doc = build_speedscope(_STATE)
    doc["$schema"] = "https://example.com/nope.json"
    assert any("$schema" in e for e in validate_speedscope(doc))


def test_write_speedscope_and_folded(tmp_path):
    target = write_speedscope(
        _STATE, tmp_path / "p.speedscope.json", name="x"
    )
    doc = json.loads(target.read_text())
    assert validate_speedscope(doc) == []
    folded = write_folded(_STATE, folded_path_for(target))
    assert folded == tmp_path / "p.folded.txt"
    lines = folded.read_text().splitlines()
    assert lines == sorted(lines)
    assert "main;work;inner 5" in lines


def test_folded_lines_and_path_mapping():
    assert folded_lines({"stacks": {}}) == []
    assert str(folded_path_for("x.json")) == "x.folded.txt"
    assert str(folded_path_for("x.speedscope.json")) == "x.folded.txt"
    assert str(folded_path_for("x.bin")) == "x.bin.folded.txt"


# ----------------------------------------------------------------------
# The process-global singleton
# ----------------------------------------------------------------------
def test_global_profiler_starts_disabled():
    assert PROFILER.thread is None
    assert not PROFILER.enabled
