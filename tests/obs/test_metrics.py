"""Metrics registry: counters, gauges, decade histograms, merging."""

import numpy as np

from repro.obs import METRICS, Histogram, MetricsRegistry


def test_counter_get_or_create_and_inc():
    METRICS.counter("x").inc()
    METRICS.counter("x").inc(4)
    assert METRICS.counter_value("x") == 5
    assert METRICS.counter_value("never-touched") == 0


def test_gauge_last_write_wins():
    METRICS.gauge("g").set(1.5)
    METRICS.gauge("g").set(2.5)
    assert METRICS.snapshot()["gauges"]["g"] == 2.5


def test_histogram_state_and_decades():
    h = Histogram()
    h.observe(1.0)       # decade 0
    h.observe(5.0)       # decade 0
    h.observe(120.0)     # decade 2
    h.observe(0.03)      # decade -2
    h.observe(0.0)       # nonpositive
    state = h.state()
    assert state["count"] == 5
    assert state["sum"] == 126.03
    assert state["min"] == 0.0 and state["max"] == 120.0
    assert state["decades"] == {"-2": 1, "0": 2, "2": 1}
    assert state["nonpositive"] == 1
    assert h.mean == 126.03 / 5


def test_observe_many_accepts_ndarray():
    h = Histogram()
    h.observe_many(np.array([1.0, 10.0, 100.0]))
    h.observe_many(np.empty(0))
    assert h.count == 3
    assert h.state()["decades"] == {"0": 1, "1": 1, "2": 1}


def test_snapshot_merge_equals_serial_totals():
    serial = MetricsRegistry()
    workers = [MetricsRegistry(), MetricsRegistry()]
    values = [[1.0, 2.0, 30.0], [0.5, 400.0]]
    for registry, chunk in zip(workers, values):
        registry.counter("tasks").inc(len(chunk))
        registry.histogram("gtc").observe_many(chunk)
    for chunk in values:
        serial.counter("tasks").inc(len(chunk))
        serial.histogram("gtc").observe_many(chunk)

    parent = MetricsRegistry()
    for registry in workers:
        parent.merge(registry.snapshot())
    assert parent.snapshot() == serial.snapshot()


def test_merge_histogram_min_max_none_handling():
    parent = MetricsRegistry()
    parent.histogram("h")  # created, never observed: min/max None
    child = MetricsRegistry()
    child.histogram("h").observe(7.0)
    parent.merge(child.snapshot())
    state = parent.snapshot()["histograms"]["h"]
    assert state["min"] == 7.0 and state["max"] == 7.0
    # Merging an empty histogram back changes nothing.
    parent.merge(
        {"histograms": {"h": Histogram().state()}}
    )
    assert parent.snapshot()["histograms"]["h"] == state


def test_histogram_merge_state_accumulates():
    first = Histogram()
    first.observe(1.0)
    first.observe(50.0)
    second = Histogram()
    second.observe(0.02)
    second.observe(300.0)
    second.observe(-1.0)
    first.merge_state(second.state())
    state = first.state()
    assert state["count"] == 5
    assert state["sum"] == 350.02
    assert state["min"] == -1.0 and state["max"] == 300.0
    assert state["decades"] == {"-2": 1, "0": 1, "1": 1, "2": 1}
    assert state["nonpositive"] == 1


def test_registry_merge_disjoint_names():
    parent = MetricsRegistry()
    parent.counter("only.parent").inc(2)
    parent.histogram("hist.parent").observe(1.0)
    child = MetricsRegistry()
    child.counter("only.child").inc(3)
    child.gauge("gauge.child").set(9)
    child.histogram("hist.child").observe(10.0)
    parent.merge(child.snapshot())
    snapshot = parent.snapshot()
    assert snapshot["counters"] == {
        "only.parent": 2, "only.child": 3
    }
    assert snapshot["gauges"] == {"gauge.child": 9}
    assert set(snapshot["histograms"]) == {
        "hist.parent", "hist.child"
    }
    assert snapshot["histograms"]["hist.child"]["count"] == 1


def test_registry_merge_overlapping_names():
    parent = MetricsRegistry()
    parent.counter("tasks").inc(2)
    parent.gauge("jobs").set(1)
    parent.histogram("gtc").observe(1.0)
    child = MetricsRegistry()
    child.counter("tasks").inc(5)
    child.gauge("jobs").set(4)
    child.histogram("gtc").observe(100.0)
    parent.merge(child.snapshot())
    snapshot = parent.snapshot()
    # Counters and histograms accumulate; gauges: last write wins.
    assert snapshot["counters"]["tasks"] == 7
    assert snapshot["gauges"]["jobs"] == 4
    gtc = snapshot["histograms"]["gtc"]
    assert gtc["count"] == 2
    assert gtc["min"] == 1.0 and gtc["max"] == 100.0
    assert gtc["decades"] == {"0": 1, "2": 1}


def test_reset_clears_everything():
    METRICS.counter("a").inc()
    METRICS.gauge("b").set(1)
    METRICS.histogram("c").observe(1)
    METRICS.reset()
    assert METRICS.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}
    }
