"""The benchmark telemetry plugin, driven end-to-end.

Runs a real (subprocess) pytest session against the *actual*
``benchmarks/conftest.py`` with a tiny synthetic benchmark, then checks
that the session emitted a schema-valid ``BENCH_<module>.json`` record
— the same path every shipped benchmark takes, without paying for a
TPC-H catalog build.
"""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

SYNTHETIC = '''\
def test_bench_addition(benchmark, bench_extras):
    result = benchmark(lambda: sum(range(1000)))
    assert result == 499500
    bench_extras("workload", "synthetic")


def test_unbenchmarked_tests_are_ignored():
    assert True
'''


@pytest.fixture(scope="module")
def bench_run(tmp_path_factory):
    site = tmp_path_factory.mktemp("bench-plugin")
    shutil.copy(REPO / "benchmarks" / "conftest.py", site / "conftest.py")
    (site / "test_bench_synthetic.py").write_text(SYNTHETIC)
    out_dir = site / "records"
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        REPRO_BENCH_DIR=str(out_dir),
    )
    env.pop("BENCH_JSON", None)
    completed = subprocess.run(
        [
            sys.executable, "-m", "pytest",
            str(site / "test_bench_synthetic.py"),
            "-q", "-p", "no:cacheprovider",
        ],
        cwd=site, env=env, capture_output=True, text=True,
        timeout=300,
    )
    return completed, out_dir


def test_plugin_session_passes(bench_run):
    completed, _ = bench_run
    assert completed.returncode == 0, completed.stdout + completed.stderr


def test_plugin_emits_schema_valid_record(bench_run):
    from repro.obs.bench import load_bench_record

    _, out_dir = bench_run
    assert sorted(p.name for p in out_dir.iterdir()) == [
        "BENCH_synthetic.json"
    ]
    record = load_bench_record(out_dir / "BENCH_synthetic.json")
    assert record["benchmark"] == "synthetic"
    assert record["extras"] == {"workload": "synthetic"}
    result = record["results"]["test_bench_addition"]
    assert result["median_seconds"] > 0
    assert result["rounds"] >= 1
    # Only the benchmarked test is recorded.
    assert list(record["results"]) == ["test_bench_addition"]


def test_record_is_stable_sorted_json(bench_run):
    _, out_dir = bench_run
    text = (out_dir / "BENCH_synthetic.json").read_text()
    data = json.loads(text)
    assert text == json.dumps(data, indent=2, sort_keys=True) + "\n"
