"""Tests for repro.storage.layout (the three paper configurations)."""

import pytest

from repro.storage.device import StorageDevice
from repro.storage.layout import (
    DEFAULT_CPU_COST,
    IOAccount,
    ObjectKey,
    StorageLayout,
)

TABLES = ("LINEITEM", "PART")


class TestObjectKey:
    def test_constructors(self):
        assert ObjectKey.table("PART").kind == "table"
        assert ObjectKey.index("PART").subject == "PART"
        assert ObjectKey.temp().kind == "temp"

    def test_validation(self):
        with pytest.raises(ValueError):
            ObjectKey("bogus", "X")
        with pytest.raises(ValueError):
            ObjectKey("temp", "X")
        with pytest.raises(ValueError):
            ObjectKey("table", "")


class TestIOAccount:
    def test_accumulation(self):
        account = IOAccount()
        key = ObjectKey.table("PART")
        account.add_io(key, seeks=2, pages=10)
        account.add_io(key, seeks=1, pages=5)
        account.add_cpu(1000)
        assert account.io[key] == (3, 15)
        assert account.cpu_instructions == 1000
        assert account.total_seeks() == 3
        assert account.total_pages() == 15

    def test_merge_and_scale(self):
        a = IOAccount()
        a.add_io(ObjectKey.table("PART"), 1, 10)
        a.add_cpu(100)
        b = IOAccount()
        b.add_io(ObjectKey.table("PART"), 2, 20)
        b.add_io(ObjectKey.temp(), 1, 5)
        b.add_cpu(50)
        a.merge(b)
        assert a.io[ObjectKey.table("PART")] == (3, 30)
        assert a.io[ObjectKey.temp()] == (1, 5)
        assert a.cpu_instructions == 150
        doubled = a.scaled(2)
        assert doubled.io[ObjectKey.temp()] == (2, 10)
        assert doubled.cpu_instructions == 300
        # Scaling returns a copy; the original is untouched.
        assert a.io[ObjectKey.temp()] == (1, 5)

    def test_copy_is_independent(self):
        a = IOAccount()
        a.add_io(ObjectKey.temp(), 1, 1)
        b = a.copy()
        b.add_io(ObjectKey.temp(), 1, 1)
        assert a.io[ObjectKey.temp()] == (1, 1)

    def test_validation(self):
        account = IOAccount()
        with pytest.raises(ValueError):
            account.add_io(ObjectKey.temp(), -1, 0)
        with pytest.raises(ValueError):
            account.add_cpu(-5)
        with pytest.raises(ValueError):
            account.scaled(-1)


class TestSharedDeviceLayout:
    """Section 8.1.1: one disk, three effective resources."""

    def test_space_has_cpu_seek_xfer(self):
        layout = StorageLayout.shared_device(TABLES)
        assert layout.space.names == ("cpu", "disk.seek", "disk.xfer")

    def test_center_costs_are_db2_defaults(self):
        layout = StorageLayout.shared_device(TABLES)
        center = layout.center_costs()
        assert center["cpu"] == pytest.approx(DEFAULT_CPU_COST)
        assert center["disk.seek"] == pytest.approx(24.1)
        assert center["disk.xfer"] == pytest.approx(9.0)

    def test_usage_sums_over_all_objects(self):
        layout = StorageLayout.shared_device(TABLES)
        account = IOAccount()
        account.add_io(ObjectKey.table("LINEITEM"), 1, 100)
        account.add_io(ObjectKey.index("PART"), 2, 10)
        account.add_io(ObjectKey.temp(), 3, 50)
        account.add_cpu(9000)
        usage = layout.to_usage(account)
        assert usage["cpu"] == 9000
        assert usage["disk.seek"] == 6
        assert usage["disk.xfer"] == 160

    def test_independent_groups_for_figure5(self):
        layout = StorageLayout.shared_device(TABLES)
        groups = layout.independent_groups()
        assert len(groups) == 3  # cpu, seek, xfer all free

    def test_total_cost_matches_device_formula(self):
        layout = StorageLayout.shared_device(TABLES)
        account = IOAccount()
        account.add_io(ObjectKey.table("PART"), 2, 3)
        usage = layout.to_usage(account)
        total = usage.dot(layout.center_costs())
        assert total == pytest.approx(2 * 24.1 + 3 * 9.0)


class TestPerTableAndIndexLayout:
    """Section 8.1.2: 2k + 2 resources for a k-table query."""

    def test_dimension_count(self):
        layout = StorageLayout.per_table_and_index(TABLES)
        # cpu + 2 tables + 2 index groups + temp = 6
        assert layout.space.dimension == 2 * len(TABLES) + 2

    def test_kind_tags_for_complementarity(self):
        layout = StorageLayout.per_table_and_index(TABLES)
        space = layout.space
        assert space.resource("dev.table.LINEITEM").kind == "table"
        assert space.resource("dev.index.LINEITEM").kind == "index"
        assert space.resource("dev.temp").kind == "temp"
        assert space.resource("cpu").kind == "cpu"

    def test_locked_ratio_usage_folds_device_params(self):
        layout = StorageLayout.per_table_and_index(TABLES)
        account = IOAccount()
        account.add_io(ObjectKey.table("PART"), seeks=2, pages=3)
        usage = layout.to_usage(account)
        assert usage["dev.table.PART"] == pytest.approx(2 * 24.1 + 3 * 9.0)
        assert usage["dev.table.LINEITEM"] == 0.0
        # Center multiplier is 1 -> total cost identical to split form.
        assert usage.dot(layout.center_costs()) == pytest.approx(
            2 * 24.1 + 3 * 9.0
        )

    def test_variation_groups_one_per_device(self):
        layout = StorageLayout.per_table_and_index(TABLES)
        groups = layout.variation_groups()
        assert len(groups) == 2 * len(TABLES) + 2  # devices + temp + cpu
        assert groups[0].name == "cpu"

    def test_index_and_table_io_go_to_different_devices(self):
        layout = StorageLayout.per_table_and_index(TABLES)
        account = IOAccount()
        account.add_io(ObjectKey.table("PART"), 0, 10)
        account.add_io(ObjectKey.index("PART"), 0, 10)
        usage = layout.to_usage(account)
        assert usage["dev.table.PART"] > 0
        assert usage["dev.index.PART"] > 0


class TestPerTableWithIndexesLayout:
    """Section 8.1.3: k + 2 resources, table co-located with indexes."""

    def test_dimension_count(self):
        layout = StorageLayout.per_table_with_indexes(TABLES)
        assert layout.space.dimension == len(TABLES) + 2

    def test_table_and_index_share_dimension(self):
        layout = StorageLayout.per_table_with_indexes(TABLES)
        account = IOAccount()
        account.add_io(ObjectKey.table("PART"), 0, 10)
        account.add_io(ObjectKey.index("PART"), 0, 10)
        usage = layout.to_usage(account)
        assert usage["dev.PART"] == pytest.approx(2 * 10 * 9.0)

    def test_co_located_device_tagged_as_table(self):
        layout = StorageLayout.per_table_with_indexes(TABLES)
        assert layout.space.resource("dev.PART").kind == "table"
        assert layout.space.resource("dev.temp").kind == "temp"


class TestLayoutValidation:
    def test_placement_on_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            StorageLayout(
                {ObjectKey.temp(): "nope"},
                [StorageDevice("disk")],
            )

    def test_duplicate_devices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StorageLayout(
                {},
                [StorageDevice("d"), StorageDevice("d")],
            )

    def test_bad_cpu_cost_rejected(self):
        with pytest.raises(ValueError, match="cpu_cost"):
            StorageLayout({}, [StorageDevice("d")], cpu_cost=0)

    def test_unplaced_object_raises_on_use(self):
        layout = StorageLayout.shared_device(("PART",))
        account = IOAccount()
        account.add_io(ObjectKey.table("ORDERS"), 1, 1)
        with pytest.raises(KeyError, match="no placement"):
            layout.to_usage(account)
