"""Tests for device degradation timelines."""

import pytest

from repro.storage.degradation import (
    LoadSurge,
    RaidRebuild,
    StepDegradation,
    first_crossing,
)
from repro.storage.device import StorageDevice


class TestRaidRebuild:
    def test_peak_at_start_decaying_to_one(self):
        rebuild = RaidRebuild(start=100.0, duration=1000.0,
                              peak_factor=10.0)
        assert rebuild.factor_at(0.0) == 1.0
        assert rebuild.factor_at(100.0) == pytest.approx(10.0)
        assert rebuild.factor_at(600.0) == pytest.approx(5.5)
        assert rebuild.factor_at(1100.0) == 1.0

    def test_monotone_decay_during_rebuild(self):
        rebuild = RaidRebuild(start=0.0, duration=100.0, peak_factor=8.0)
        factors = [rebuild.factor_at(t) for t in range(0, 100, 10)]
        assert factors == sorted(factors, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            RaidRebuild(0.0, 0.0)
        with pytest.raises(ValueError):
            RaidRebuild(0.0, 10.0, peak_factor=0.5)

    def test_degraded_device(self):
        rebuild = RaidRebuild(start=0.0, duration=10.0, peak_factor=4.0)
        device = StorageDevice("d", 24.1, 9.0)
        slowed = rebuild.degraded_device(device, 0.0)
        assert slowed.seek_cost == pytest.approx(4 * 24.1)
        assert slowed.transfer_cost == pytest.approx(4 * 9.0)


class TestLoadSurge:
    def test_trapezoid_shape(self):
        surge = LoadSurge(start=10.0, ramp=10.0, plateau=20.0,
                          peak_factor=5.0)
        assert surge.factor_at(5.0) == 1.0
        assert surge.factor_at(15.0) == pytest.approx(3.0)
        assert surge.factor_at(25.0) == pytest.approx(5.0)
        assert surge.factor_at(45.0) == pytest.approx(3.0)
        assert surge.factor_at(60.0) == 1.0

    def test_zero_ramp_is_a_pulse(self):
        surge = LoadSurge(start=10.0, ramp=0.0, plateau=5.0,
                          peak_factor=3.0)
        assert surge.factor_at(9.9) == 1.0
        assert surge.factor_at(10.0) == 3.0
        assert surge.factor_at(14.9) == 3.0
        assert surge.factor_at(15.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadSurge(0.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            LoadSurge(0.0, 1.0, 1.0, peak_factor=0.0)


class TestStepDegradation:
    def test_step(self):
        step = StepDegradation(start=50.0, factor=7.0)
        assert step.factor_at(49.9) == 1.0
        assert step.factor_at(50.0) == 7.0
        assert step.factor_at(1e9) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDegradation(0.0, 0.9)


class TestFirstCrossing:
    def test_crossing_during_rebuild(self):
        rebuild = RaidRebuild(start=100.0, duration=1000.0,
                              peak_factor=10.0)
        # A plan with robustness radius 4 goes stale the moment the
        # factor reaches 4 — which happens right at rebuild start
        # (factor jumps to 10) in this model.
        t = first_crossing(rebuild, threshold=4.0, t_max=2000.0)
        assert t == pytest.approx(100.0, abs=2.1)

    def test_threshold_never_reached(self):
        surge = LoadSurge(start=0.0, ramp=10.0, plateau=10.0,
                          peak_factor=3.0)
        assert first_crossing(surge, threshold=5.0, t_max=100.0) is None

    def test_trivial_threshold(self):
        step = StepDegradation(start=10.0, factor=2.0)
        assert first_crossing(step, threshold=1.0, t_max=100.0) == 0.0

    def test_validation(self):
        step = StepDegradation(start=0.0, factor=2.0)
        with pytest.raises(ValueError):
            first_crossing(step, 1.5, 10.0, resolution=1)


def test_plan_staleness_end_to_end():
    """Timeline + switching distance: when does Q20's plan go stale
    during a PARTSUPP-index-device rebuild?"""
    from repro.catalog import build_tpch_catalog
    from repro.experiments.robustness import analyze_query_robustness
    from repro.experiments.scenarios import scenario
    from repro.workloads import tpch_query

    catalog = build_tpch_catalog(100)
    query = tpch_query("Q20", catalog)
    robustness = analyze_query_robustness(
        query, catalog, scenario("split")
    )
    partsupp_index = next(
        p for p in robustness.parameters
        if p.group == "dev.index.PARTSUPP"
    )
    rebuild = RaidRebuild(start=60.0, duration=3600.0, peak_factor=20.0)
    stale_at = first_crossing(
        rebuild, partsupp_index.distance.up_factor, t_max=7200.0
    )
    # The plan's threshold is well under the rebuild's peak slowdown,
    # so it goes stale as soon as the rebuild begins.
    assert stale_at is not None
    assert stale_at <= 70.0
