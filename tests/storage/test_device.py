"""Tests for repro.storage.device."""

import pytest

from repro.storage.device import (
    DEFAULT_SEEK_COST,
    DEFAULT_TRANSFER_COST,
    DeviceCatalog,
    StorageDevice,
)


def test_db2_defaults_match_paper():
    """Section 8.1: DB2 defaults of 24.1 and 9.0 time units."""
    device = StorageDevice("disk")
    assert device.seek_cost == 24.1
    assert device.transfer_cost == 9.0
    assert DEFAULT_SEEK_COST == 24.1
    assert DEFAULT_TRANSFER_COST == 9.0


def test_section_3_1_example():
    """2 seeks + 3 pages costs 2*c_ds + 3*c_dt."""
    device = StorageDevice("d", seek_cost=10.0, transfer_cost=2.0)
    assert device.access_cost(seeks=2, pages=3) == pytest.approx(26.0)


def test_access_cost_validation():
    device = StorageDevice("d")
    with pytest.raises(ValueError):
        device.access_cost(-1, 0)
    with pytest.raises(ValueError):
        device.access_cost(0, -1)


def test_device_validation():
    with pytest.raises(ValueError):
        StorageDevice("")
    with pytest.raises(ValueError):
        StorageDevice("d", seek_cost=0)
    with pytest.raises(ValueError):
        StorageDevice("d", transfer_cost=-1)


def test_scaled_models_load_change():
    device = StorageDevice("d", 24.1, 9.0)
    slow = device.scaled(10.0)
    assert slow.seek_cost == pytest.approx(241.0)
    assert slow.transfer_cost == pytest.approx(90.0)
    assert slow.name == "d"
    with pytest.raises(ValueError):
        device.scaled(0)


def test_catalog_registration_and_lookup():
    catalog = DeviceCatalog()
    disk = catalog.add(StorageDevice("disk1"))
    assert catalog.get("disk1") is disk
    assert "disk1" in catalog
    assert "disk2" not in catalog
    assert len(catalog) == 1
    assert catalog.names() == ("disk1",)
    with pytest.raises(ValueError, match="already registered"):
        catalog.add(StorageDevice("disk1"))
    with pytest.raises(KeyError):
        catalog.get("disk2")
    assert [d.name for d in catalog] == ["disk1"]
