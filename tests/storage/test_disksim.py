"""Tests for the event-level disk simulator."""

import numpy as np
import pytest

from repro.storage.disksim import (
    DiskGeometry,
    SimulatedDisk,
    fit_two_parameter_model,
)


def test_geometry_derived_quantities():
    geometry = DiskGeometry(rpm=10_000, pages_per_track=64)
    assert geometry.revolution_time == pytest.approx(6.0)
    assert geometry.transfer_time() == pytest.approx(6.0 / 64)
    assert geometry.capacity_pages == 10_000 * 64 * 4


def test_seek_time_monotone_in_distance():
    geometry = DiskGeometry()
    assert geometry.seek_time(0) == 0.0
    previous = 0.0
    for distance in (1, 10, 100, 599, 600, 1000, 9999):
        current = geometry.seek_time(distance)
        assert current >= previous * 0.99  # allow knee discontinuity slack
        previous = current


def test_sequential_scan_cheaper_than_random_reads():
    n_pages = 500
    disk_a = SimulatedDisk()
    scan_time = disk_a.sequential_scan(0, n_pages)
    disk_b = SimulatedDisk()
    rng = np.random.default_rng(0)
    pages = rng.integers(0, disk_b.geometry.capacity_pages, n_pages)
    random_time = disk_b.random_reads([int(p) for p in pages])
    assert random_time > 10 * scan_time


def test_consecutive_accesses_detected_as_sequential():
    disk = SimulatedDisk()
    disk.access(100)
    disk.access(101)
    disk.access(102)
    assert disk.stats.n_sequential == 2
    assert disk.stats.n_random == 1


def test_stats_accounting_consistent():
    disk = SimulatedDisk()
    disk.access(0, count=10)
    disk.access(5_000)
    stats = disk.stats
    assert stats.pages_read == 11
    assert stats.n_requests == 2
    assert stats.busy_time == pytest.approx(
        stats.seek_time + stats.rotation_time + stats.transfer_time
    )


def test_out_of_range_page_rejected():
    disk = SimulatedDisk()
    with pytest.raises(ValueError):
        disk.access(disk.geometry.capacity_pages)
    with pytest.raises(ValueError):
        disk.access(0, count=0)


def test_random_rotational_latency_with_rng():
    disk = SimulatedDisk(rng=np.random.default_rng(1))
    t1 = disk.access(1_000)
    disk2 = SimulatedDisk(rng=np.random.default_rng(2))
    t2 = disk2.access(1_000)
    assert t1 != t2  # sampled latencies differ


class TestTwoParameterFit:
    """Recover the paper's (d_s, d_t) disk model from simulation."""

    def _trace(self, seed=0, n=400):
        rng = np.random.default_rng(seed)
        geometry = DiskGeometry()
        requests = []
        for _ in range(n):
            if rng.random() < 0.5:
                # Random single-page read.
                requests.append(
                    (int(rng.integers(0, geometry.capacity_pages)), 1)
                )
            else:
                # Sequential run of 8-128 pages.
                start = int(
                    rng.integers(0, geometry.capacity_pages - 200)
                )
                requests.append((start, int(rng.integers(8, 128))))
        return requests

    def test_fit_recovers_plausible_parameters(self):
        d_s, d_t = fit_two_parameter_model(self._trace())
        geometry = DiskGeometry()
        # d_t should be close to the raw transfer time per page.
        assert d_t == pytest.approx(geometry.transfer_time(), rel=0.2)
        # d_s should be near seek + half-rotation for typical distances.
        typical_overhead = geometry.seek_time(3000) + geometry.revolution_time / 2
        assert d_s == pytest.approx(typical_overhead, rel=0.5)

    def test_fit_predicts_service_times(self):
        requests = self._trace(seed=3)
        d_s, d_t = fit_two_parameter_model(requests)
        disk = SimulatedDisk()
        total_true = 0.0
        total_model = 0.0
        for page, count in requests:
            random_before = disk.stats.n_random
            total_true += disk.access(page, count)
            was_random = disk.stats.n_random > random_before
            total_model += (d_s if was_random else 0.0) + d_t * count
        # Aggregate model error under 10%: the two-parameter model is a
        # good first approximation, as the paper asserts.
        assert total_model == pytest.approx(total_true, rel=0.10)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            fit_two_parameter_model([])
