"""Validate the cost model against execution and disk simulation.

Two checks the paper asserts but (working against closed-source DB2)
could not run:

1. **Plan-level**: execute optimizer-chosen plans on generated TPC-H
   data with a metered executor and compare measured page I/O and
   cardinalities against the optimizer's estimates.
2. **Device-level**: drive the event-level disk simulator (seek curve,
   rotational latency, per-track transfer) with a mixed trace and
   least-squares fit the paper's two-parameter (d_s, d_t) model to it,
   reporting the fit error — the Section 3.1 claim that two parameters
   are "a good first approximation".

Run:  python examples/cost_model_validation.py
"""

import numpy as np

from repro.catalog import build_tpch_catalog
from repro.dbgen import generate_tpch
from repro.executor import ColumnCondition, PlanExecutor, StorageEngine
from repro.optimizer import (
    DEFAULT_PARAMETERS,
    JoinPredicate,
    LocalPredicate,
    QuerySpec,
    TableRef,
    optimize_scalar,
)
from repro.storage import ObjectKey, StorageLayout
from repro.storage.disksim import (
    DiskGeometry,
    SimulatedDisk,
    fit_two_parameter_model,
)

SCALE_FACTOR = 0.01


def plan_level_validation() -> None:
    print("== plan-level validation (predicted vs measured) ==")
    catalog = build_tpch_catalog(SCALE_FACTOR)
    data = generate_tpch(SCALE_FACTOR, seed=11)
    query = QuerySpec(
        name="q14ish",
        tables=(TableRef("L", "LINEITEM"), TableRef("P", "PART")),
        joins=(JoinPredicate("L", "L_PARTKEY", "P", "P_PARTKEY"),),
        predicates=(LocalPredicate("L", 30 / 2526, "L_SHIPDATE"),),
        description="Q14 shape: one shipping month of LINEITEM x PART",
    )
    conditions = {
        "L": [ColumnCondition("L", "L_SHIPDATE", "between", (100, 129))]
    }
    layout = StorageLayout.shared_device(query.table_names())
    center = layout.center_costs()

    for label, cost in (
        ("default costs", center),
        ("seeks 100x cheaper", center.perturbed({"disk.seek": 0.01})),
    ):
        plan = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout, cost
        )
        engine = StorageEngine(data, catalog, bufferpool_pages=200_000)
        executor = PlanExecutor(engine, catalog, query, conditions)
        result = executor.run(plan.node)
        print(f"\n[{label}] plan: {plan.signature[:70]}")
        print(
            f"  rows:  predicted {plan.rows:10.0f}   "
            f"measured {result.rows:10d}"
        )
        for table in query.table_names():
            key = ObjectKey.table(table)
            measured = result.io.pages(key)
            print(
                f"  {table:9s} pages measured {measured:8d} "
                f"(seq {result.io.sequential_pages.get(key, 0)}, "
                f"random {result.io.random_pages.get(key, 0)})"
            )


def device_level_validation() -> None:
    print("\n== device-level validation (two-parameter disk model) ==")
    geometry = DiskGeometry()
    rng = np.random.default_rng(5)
    trace = []
    for _ in range(600):
        if rng.random() < 0.5:
            trace.append((int(rng.integers(0, geometry.capacity_pages)), 1))
        else:
            start = int(rng.integers(0, geometry.capacity_pages - 256))
            trace.append((start, int(rng.integers(8, 256))))
    d_s, d_t = fit_two_parameter_model(trace, geometry)
    print(f"fitted d_s = {d_s:.3f} ms/seek, d_t = {d_t:.4f} ms/page")
    print(
        f"(raw transfer time {geometry.transfer_time():.4f} ms/page, "
        f"half rotation {geometry.revolution_time / 2:.2f} ms)"
    )

    disk = SimulatedDisk(geometry)
    total_true = 0.0
    total_model = 0.0
    for page, count in trace:
        random_before = disk.stats.n_random
        total_true += disk.access(page, count)
        was_random = disk.stats.n_random > random_before
        total_model += (d_s if was_random else 0.0) + d_t * count
    error = abs(total_model - total_true) / total_true
    print(
        f"aggregate service time: simulated {total_true:.0f} ms, "
        f"two-parameter model {total_model:.0f} ms "
        f"({error * 100:.1f}% error)"
    )
    print(
        "-> the Section 3.1 approximation holds: a seek resource plus "
        "a transfer resource capture the drive to within a few percent."
    )


if __name__ == "__main__":
    plan_level_validation()
    device_level_validation()
