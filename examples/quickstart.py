"""Quickstart: the vector-space sensitivity framework on a toy system.

Walks the paper's core concepts on a two-resource example:

1. usage vectors / cost vectors / total cost (Section 3);
2. the switchover plane between two plans (Section 4);
3. Example 1 — the tight ``delta**2`` error bound (Section 5.4);
4. candidate optimal plans and a worst-case sensitivity curve
   (Sections 4.4 and 6.1).

Run:  python examples/quickstart.py
"""

from repro.core import (
    CostVector,
    FeasibleRegion,
    ResourceSpace,
    Side,
    SwitchoverPlane,
    UsageVector,
    candidate_optimal_indices,
    relative_total_cost,
    theorem1_interval,
    worst_case_curve,
)
from repro.core.costmodel import optimal_plan_index


def main() -> None:
    # A system with two time-shared resources (think: two disks).
    space = ResourceSpace.from_names(["disk1", "disk2"])
    costs = CostVector(space, {"disk1": 1.0, "disk2": 1.0})

    # Two query plans described by how much of each resource they use.
    plan_a = UsageVector(space, {"disk1": 1.0, "disk2": 0.0})
    plan_b = UsageVector(space, {"disk1": 0.0, "disk2": 1.0})
    print("== Total costs (T = U . C) ==")
    print(f"plan a: {plan_a.dot(costs):.2f}   plan b: {plan_b.dot(costs):.2f}")

    # The switchover plane: where the two plans cost the same.
    plane = SwitchoverPlane(plan_a, plan_b)
    print("\n== Switchover plane ==")
    for disk1, disk2 in ((1.0, 1.0), (3.0, 1.0), (1.0, 3.0)):
        point = CostVector(space, [disk1, disk2])
        side = plane.side(point)
        meaning = {
            Side.ON_PLANE: "plans tie",
            Side.A_DOMINATED: "plan a is MORE expensive",
            Side.B_DOMINATED: "plan b is MORE expensive",
        }[side]
        print(f"C = ({disk1}, {disk2}): {meaning}")

    # Example 1 of the paper: the delta**2 bound is tight.
    print("\n== Example 1: tightness of the delta^2 bound ==")
    for delta in (2.0, 10.0, 100.0):
        skewed = CostVector(space, [delta, 1.0 / delta])
        observed = relative_total_cost(plan_a, plan_b, skewed)
        low, high = theorem1_interval(1.0, delta)
        print(
            f"delta={delta:6.1f}: T_rel = {observed:10.1f} "
            f"(Theorem 1 interval [{low:.4f}, {high:.1f}])"
        )

    # Candidate optimal plans within a feasible region.
    print("\n== Candidate optimal plans ==")
    plans = [
        plan_a,
        plan_b,
        UsageVector(space, [0.5, 0.5]),   # on the lower hull: candidate
        UsageVector(space, [0.9, 0.9]),   # above the hull: never optimal
    ]
    region = FeasibleRegion(costs, delta=100.0)
    candidates = candidate_optimal_indices(plans, region)
    for index, plan in enumerate(plans):
        marker = "CANDIDATE" if index in candidates else "never optimal"
        print(f"plan {index}: usage={plan.values.tolist()}  -> {marker}")

    # Worst-case sensitivity of the plan chosen at the center costs.
    print("\n== Worst-case global relative cost ==")
    initial_index = optimal_plan_index(plans, costs)
    candidate_usages = [plans[i] for i in candidates]
    curve = worst_case_curve(
        plans[initial_index],
        candidate_usages,
        FeasibleRegion(costs, 1.0),
        deltas=[1.0, 2.0, 5.0, 10.0, 100.0],
        label="toy",
    )
    print(f"initial plan: #{initial_index} (optimal at C0)")
    for point in curve.points:
        print(
            f"delta={point.delta:7.1f}: worst-case GTC = {point.gtc:10.2f}"
            f"  (bound: {point.delta ** 2:.0f})"
        )
    print(
        "\nComplementary plans reach the quadratic bound exactly — the "
        "Figure 6 mechanism in miniature."
    )


if __name__ == "__main__":
    main()
