"""Regenerate the paper's Figures 5-7 on the TPC-H workload.

For each storage scenario, computes the worst-case global relative
cost of the default-cost plan for each query as the optimizer's cost
estimates are allowed to err by a factor of up to delta — the paper's
Section 8.1 experiments against our optimizer substrate.

Run:  python examples/tpch_sensitivity.py            # 8 queries, fast
      python examples/tpch_sensitivity.py --full     # all 22 queries
      python examples/tpch_sensitivity.py --csv out  # also dump CSVs
"""

import argparse
import pathlib
import time

from repro.catalog import build_tpch_catalog
from repro.experiments import (
    figure_to_csv,
    format_figure_summary,
    format_figure_table,
    run_figure,
)
from repro.workloads import build_tpch_queries

FAST_SUBSET = ("Q1", "Q3", "Q6", "Q8", "Q11", "Q14", "Q16", "Q20")
DELTAS = (1.0, 10.0, 100.0, 1000.0, 10000.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="run all 22 TPC-H queries"
    )
    parser.add_argument(
        "--scale", type=float, default=100.0,
        help="TPC-H scale factor for the statistics (default 100)",
    )
    parser.add_argument(
        "--csv", type=pathlib.Path, default=None,
        help="directory to write figure CSVs into",
    )
    args = parser.parse_args()

    catalog = build_tpch_catalog(args.scale)
    queries = build_tpch_queries(catalog)
    if not args.full:
        queries = {name: queries[name] for name in FAST_SUBSET}
    print(
        f"TPC-H at scale factor {args.scale:g}, "
        f"{len(queries)} queries, deltas up to {DELTAS[-1]:g}\n"
    )

    for key in ("shared", "split", "colocated"):
        start = time.perf_counter()
        result = run_figure(
            key, catalog=catalog, queries=queries, deltas=DELTAS
        )
        elapsed = time.perf_counter() - start
        print(format_figure_summary(result))
        print()
        print(format_figure_table(result))
        print(f"\n[{elapsed:.1f}s]\n" + "=" * 72 + "\n")
        if args.csv is not None:
            args.csv.mkdir(parents=True, exist_ok=True)
            path = args.csv / f"figure_{key}.csv"
            path.write_text(figure_to_csv(result))
            print(f"wrote {path}\n")

    print(
        "Reading the results like the paper does:\n"
        "  * shared    (Fig 5): every curve flattens — one mis-set disk\n"
        "    parameter cannot hurt much (Theorem 2's constant bound).\n"
        "  * split     (Fig 6): most curves grow ~quadratically in the\n"
        "    error (Theorem 1's delta^2 bound) — separate devices for\n"
        "    tables and indexes make accurate costs genuinely valuable.\n"
        "  * colocated (Fig 7): in between — co-locating each table\n"
        "    with its indexes removes the access-path complementary\n"
        "    plans but temp-space complementarity remains."
    )


if __name__ == "__main__":
    main()
