"""What-if: a storage device degrades under the optimizer's nose.

The paper's motivation (Section 1): device load changes, RAID
rebuilds, partial failures — the true access costs drift while the
optimizer keeps planning with stale estimates.  This script plays the
scenario out for one TPC-H query on the per-table-device layout:

* one device slows down by a factor k (default: the device holding
  PARTSUPP's indexes — the exact Section 8.1.2 callout: "increasing
  the cost of accessing this index penalized this plan");
* the optimizer, unaware, sticks to its default-cost plan;
* we report the regret (global relative cost) and the plan an informed
  optimizer would switch to, plus how much of the feasible cost space
  each candidate plan rules (region-of-influence volume).

Run:  python examples/storage_migration.py [--query Q3] [--table LINEITEM]
"""

import argparse

import numpy as np

from repro.catalog import build_tpch_catalog
from repro.core import InfluenceDiagram, global_relative_cost
from repro.core.costmodel import optimal_plan_index
from repro.experiments.scenarios import scenario
from repro.optimizer import DEFAULT_PARAMETERS, candidate_plans
from repro.workloads import tpch_query

SLOWDOWNS = (1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 1000.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--query", default="Q20")
    parser.add_argument(
        "--table", default="PARTSUPP",
        help="table whose storage device degrades",
    )
    parser.add_argument(
        "--device", default="index", choices=("table", "index", "temp"),
        help="which object group's device degrades "
        "(temp = the sort/hash spill area)",
    )
    args = parser.parse_args()

    catalog = build_tpch_catalog(100)
    query = tpch_query(args.query, catalog)
    if args.table not in query.table_names():
        raise SystemExit(
            f"{args.query} does not touch {args.table}; "
            f"tables: {query.table_names()}"
        )
    config = scenario("split")
    layout = config.layout_for(query)
    region = config.region(layout, max(SLOWDOWNS))
    candidates = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region
    )
    center = layout.center_costs()
    initial_index = candidates.initial_plan_index()
    initial = candidates.plans[initial_index]
    print(f"{args.query}: {len(candidates)} candidate plans")
    print(f"default-cost plan: {initial.signature[:90]}\n")

    if args.device == "temp":
        device_dim = "dev.temp"
    else:
        device_dim = f"dev.{args.device}.{args.table}"
    print(
        f"== device '{device_dim}' slows down; optimizer unaware =="
    )
    header = f"{'slowdown':>9}  {'regret (GTC)':>12}  informed optimizer would run"
    print(header)
    print("-" * len(header))
    for factor in SLOWDOWNS:
        true_costs = center.perturbed({device_dim: factor})
        regret = global_relative_cost(
            initial.usage, candidates.usages, true_costs
        )
        best = optimal_plan_index(candidates.usages, true_costs)
        switched = "(same plan)" if best == initial_index else (
            candidates.plans[best].signature[:55]
        )
        print(f"{factor:9g}  {regret:12.3f}  {switched}")

    # How contested is the cost space? Volume share per candidate.
    print("\n== region-of-influence volume shares (delta = 100) ==")
    small_region = config.region(layout, 100.0)
    diagram = InfluenceDiagram(candidates.usages, small_region)
    shares = diagram.volume_fractions(np.random.default_rng(0), 4000)
    order = np.argsort(shares)[::-1]
    for rank in order[:6]:
        if shares[rank] == 0:
            continue
        marker = " <- default plan" if rank == initial_index else ""
        print(
            f"  {shares[rank] * 100:5.1f}%  "
            f"{candidates.plans[rank].signature[:70]}{marker}"
        )
    print(
        "\nTakeaway: once tables live on separate devices, a single "
        "slow device makes the stale plan arbitrarily bad — monitoring "
        "storage costs buys real speedups (the paper's conclusion)."
    )


if __name__ == "__main__":
    main()
