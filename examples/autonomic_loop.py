"""The autonomic loop the paper argues for, end to end.

Section 1: "Monitoring and updating dynamic system parameters in real
time is not a pleasant job for any human administrator and some say the
job is best done by autonomic machines."  This script closes that loop
with the pieces built in this repository:

1. **Degrade**: a RAID rebuild starts on the device holding
   PARTSUPP's indexes (Brown & Patterson's scenario; the paper's own
   Q20 callout), slowing it by a decaying factor.
2. **Monitor**: at each checkpoint, the event-level disk simulator
   services a probe trace on the degraded device, and the paper's
   two-parameter model (d_s, d_t) is re-fitted to the measurements —
   this is the "accurate and timely information" of the conclusion.
3. **Replan**: the optimizer re-optimizes with the recalibrated costs;
   we report the regret a *stale* optimizer (still planning with the
   pre-rebuild costs) pays versus the autonomic one.

Run:  python examples/autonomic_loop.py [--query Q3]
"""

import argparse

import numpy as np

from repro.catalog import build_tpch_catalog
from repro.core import global_relative_cost
from repro.core.costmodel import optimal_plan_index
from repro.experiments.scenarios import scenario
from repro.optimizer import DEFAULT_PARAMETERS, candidate_plans
from repro.storage import RaidRebuild
from repro.storage.disksim import DiskGeometry, fit_two_parameter_model

#: Checkpoints (seconds) across a one-hour rebuild starting at t=60.
CHECKPOINTS = (0.0, 60.0, 600.0, 1800.0, 3000.0, 3700.0)


def monitor_device(rebuild: RaidRebuild, t: float, rng) -> float:
    """'Measure' the degraded device: simulate a probe trace and fit
    (d_s, d_t); return the observed slowdown factor vs baseline."""
    geometry = DiskGeometry()
    trace = []
    for _ in range(200):
        if rng.random() < 0.5:
            trace.append((int(rng.integers(0, geometry.capacity_pages)), 1))
        else:
            start = int(rng.integers(0, geometry.capacity_pages - 300))
            trace.append((start, int(rng.integers(8, 256))))
    d_s, d_t = fit_two_parameter_model(trace, geometry)
    baseline = d_s + 32 * d_t  # service time of a representative burst
    degraded = rebuild.factor_at(t) * baseline
    return degraded / baseline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--query", default="Q20")
    parser.add_argument("--table", default="PARTSUPP")
    parser.add_argument(
        "--device", default="index", choices=("table", "index", "temp"),
    )
    args = parser.parse_args()

    catalog = build_tpch_catalog(100)
    from repro.workloads import tpch_query

    query = tpch_query(args.query, catalog)
    config = scenario("split")
    layout = config.layout_for(query)
    region = config.region(layout, 10000.0)
    candidates = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region
    )
    center = layout.center_costs()
    stale_index = candidates.initial_plan_index()
    stale = candidates.plans[stale_index]
    if args.device == "temp":
        device_dim = "dev.temp"
    else:
        device_dim = f"dev.{args.device}.{args.table}"
    print(
        f"{args.query}: stale plan (pre-rebuild costs):\n"
        f"  {stale.signature[:90]}\n"
    )

    rebuild = RaidRebuild(start=60.0, duration=3600.0, peak_factor=30.0)
    rng = np.random.default_rng(0)
    header = (
        f"{'t (s)':>7}  {'measured slowdown':>17}  {'stale regret':>12}  "
        "autonomic optimizer's plan"
    )
    print(header)
    print("-" * len(header))
    for t in CHECKPOINTS:
        slowdown = monitor_device(rebuild, t, rng)
        true_costs = center.perturbed({device_dim: max(slowdown, 1.0)})
        regret = global_relative_cost(
            stale.usage, candidates.usages, true_costs
        )
        best = optimal_plan_index(candidates.usages, true_costs)
        plan_note = (
            "(stale plan still optimal)"
            if best == stale_index
            else candidates.plans[best].signature[:48]
        )
        print(
            f"{t:7.0f}  {slowdown:17.2f}  {regret:12.3f}  {plan_note}"
        )
    print(
        "\nThe autonomic optimizer switches plans as the measured costs "
        "drift and pays GTC 1.0 throughout; the stale optimizer pays "
        "the regret column — the paper's conclusion, quantified."
    )


if __name__ == "__main__":
    main()
