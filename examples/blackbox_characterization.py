"""Characterize an optimizer through its narrow interface only.

Replays the paper's Section 6 methodology: the optimizer is a black
box that, for any resource cost vector, reveals just the chosen plan's
identity and estimated total cost.  From that alone we:

1. discover the candidate optimal plans (Section 6.2.1's subdivision
   loop, driven by Observation 3's convexity argument);
2. reconstruct each plan's resource usage vector by least squares
   (Section 6.1.1), validating predictions at held-out cost vectors;
3. classify complementary plan pairs (Section 5.6) — reaching the
   paper's Section 8.2 conclusions without ever looking inside.

Because our optimizer is white-box underneath, the script also prints
the ground truth next to every reconstruction.

Run:  python examples/blackbox_characterization.py [--query Q14]
"""

import argparse

import numpy as np

from repro.catalog import build_tpch_catalog
from repro.core import census, discover_candidate_plans, validate_estimate
from repro.experiments.scenarios import scenario
from repro.optimizer import DEFAULT_PARAMETERS, candidate_plans
from repro.optimizer.blackbox import CandidateBackedBlackBox
from repro.workloads import tpch_query


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--query", default="Q14")
    parser.add_argument(
        "--scenario", default="split",
        choices=("shared", "split", "colocated"),
    )
    parser.add_argument("--delta", type=float, default=100.0)
    parser.add_argument("--budget", type=int, default=60000)
    args = parser.parse_args()

    catalog = build_tpch_catalog(100)
    query = tpch_query(args.query, catalog)
    config = scenario(args.scenario)
    layout = config.layout_for(query)
    region = config.region(layout, args.delta)

    print(
        f"{args.query} under scenario '{args.scenario}' "
        f"({layout.space.dimension} resources), delta = {args.delta:g}"
    )

    # White-box ground truth (what DB2 could never tell the authors).
    truth = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region, cell_cap=None
    )
    print(f"\nwhite-box candidate optimal plans: {len(truth)}")

    # The narrow interface.
    box = CandidateBackedBlackBox(truth)
    result = discover_candidate_plans(
        box,
        region,
        max_optimizer_calls=args.budget,
        rng=np.random.default_rng(0),
    )
    print(
        f"black-box discovery: {len(result.witnesses)} plans found, "
        f"complete={result.complete}, "
        f"{result.optimizer_calls} optimizer calls, "
        f"{result.boxes_examined} boxes examined"
    )

    missed = set(truth.signatures) - set(result.witnesses)
    if missed:
        print(f"missed (thin regions of influence): {len(missed)}")

    # Least-squares reconstructions vs truth.
    print("\n== usage-vector reconstruction (Section 6.1.1) ==")
    rng = np.random.default_rng(1)
    test_costs = region.sample(rng, 25)
    for signature, estimate in sorted(result.plans.items()):
        true_usage = next(
            p.usage for p in truth.plans if p.signature == signature
        )
        error = validate_estimate(
            estimate.usage, lambda c, u=true_usage: u.dot(c), test_costs
        )
        print(
            f"  prediction error {error * 100:6.3f}%  "
            f"({estimate.optimizer_calls} calls)  {signature[:70]}"
        )
    print("(the paper reports <1% on the same validation)")

    # Section 8.2 from black-box data alone.
    estimated = [e.usage for e in result.plans.values()]
    if len(estimated) >= 2:
        stats = census(estimated, tol=1e-3)
        print(
            f"\n== complementarity census from estimates ==\n"
            f"  pairs: {stats.n_pairs}, complementary: "
            f"{stats.n_complementary}, classes: {dict(stats.class_counts)}"
        )
        if stats.n_complementary and args.scenario == "split":
            print(
                "  -> complementary plans exist: expect quadratic "
                "sensitivity (the Figure 6 regime)"
            )
        elif not stats.n_complementary:
            print(
                "  -> no complementary plans: a constant bound applies "
                "(the Figure 5 regime)"
            )


if __name__ == "__main__":
    main()
