"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
``pip install -e .`` cannot build an editable wheel.  ``python setup.py
develop`` (or ``pip install -e . --no-build-isolation`` once wheel is
available) installs the package instead; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
