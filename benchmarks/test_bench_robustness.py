"""ROBUST — per-parameter plan-switch thresholds (framework extension).

Not a figure of the paper, but the direct operational payoff of its
framework: which storage parameters must an autonomic monitor watch?
Regenerates the robustness table for the split scenario and asserts
the paper-aligned headline (Q20's PARTSUPP devices are fragile).
"""

from repro.experiments import format_robustness_table, run_robustness


def test_bench_robustness_split(benchmark, catalog, queries):
    rows = benchmark.pedantic(
        lambda: run_robustness("split", catalog=catalog, queries=queries),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_robustness_table(rows))
    by_query = {row.query_name: row for row in rows}
    assert len(rows) == 22
    # The paper's Q20 callout shows up as a PARTSUPP watch-list entry.
    q20_watch = by_query["Q20"].watch_list(radius_threshold=10.0)
    assert any("PARTSUPP" in name for name in q20_watch)
    # Single-table queries have some insensitive parameters.
    for row in rows:
        for parameter in row.parameters:
            assert parameter.regret_past_switch >= 1.0 - 1e-9
