"""DECISIONS — provenance capture must be free when off.

The decision log rides inside the hottest loop in the repository (the
dense ``C @ U.T`` sweep behind Figures 5-7), so its off-path is a
single predictable branch per batch.  The benchmark times the real
instrumented kernel (:func:`repro.core.worstcase.worst_case_gtc`) with
the log disabled against a verbatim copy of the pre-instrumentation
loop, and asserts the overhead stays under the 3% contract.  The
capture-on cost (one extra ``np.partition`` + divide per batch, plus
the sampling reservoir) is recorded in the extras for context — it is
allowed to be expensive; only the off-path is contractual.
"""

import time

import numpy as np

from repro.core.feasible import FeasibleRegion
from repro.core.vectors import CostVector, ResourceSpace, UsageVector
from repro.core.worstcase import worst_case_gtc
from repro.obs.decisions import DECISIONS

#: Candidate pool and region sized so one sweep runs long enough that
#: a 3% margin dwarfs timer noise (~2 G multiply-adds per sweep).
N_PLANS = 2048
DIMENSIONS = 16
BATCH = 4096


def _workload(seed=0):
    rng = np.random.default_rng(seed)
    pool = np.exp(rng.normal(0.0, 1.0, size=(64, DIMENSIONS)))
    matrix = (rng.random((N_PLANS, 64)) < 0.1) @ pool + 0.01
    space = ResourceSpace.from_names(
        [f"r{i}" for i in range(DIMENSIONS)]
    )
    region = FeasibleRegion(
        CostVector(space, np.full(DIMENSIONS, 2.0)), 100.0
    )
    initial = UsageVector(space, matrix[0])
    candidates = [UsageVector(space, row) for row in matrix]
    return initial, candidates, region


def _reference_gtc(initial_row, matrix, region, batch_size=BATCH):
    """The sweep loop exactly as it was before decision capture."""
    best_gtc = -np.inf
    for ids, costs in region.vertex_batches(batch_size):
        totals = costs @ matrix.T
        optima = totals.min(axis=1)
        initial_totals = costs @ initial_row
        with np.errstate(divide="ignore", invalid="ignore"):
            gtc = np.where(optima > 0, initial_totals / optima, np.inf)
        local = float(gtc[int(np.argmax(gtc))])
        if local > best_gtc:
            best_gtc = local
    return best_gtc


def test_bench_decisions_off_overhead(benchmark, bench_extras):
    initial, candidates, region = _workload()
    matrix = np.array([c.values for c in candidates])

    assert not DECISIONS.enabled
    # Warm both paths (BLAS thread pools, page faults), then bracket
    # the reference timings around the benchmarked rounds so slow
    # thermal drift cancels instead of biasing the ratio.
    _reference_gtc(initial.values, matrix, region)
    worst_case_gtc(initial, candidates, region, BATCH)
    reference_runs = [
        _timed(lambda: _reference_gtc(initial.values, matrix, region))
        for _ in range(3)
    ]

    point = benchmark.pedantic(
        lambda: worst_case_gtc(initial, candidates, region, BATCH),
        rounds=5,
        iterations=1,
    )
    off_seconds = benchmark.stats.stats.min

    reference_runs += [
        _timed(lambda: _reference_gtc(initial.values, matrix, region))
        for _ in range(3)
    ]
    reference_seconds = min(reference_runs)

    # Same code path bit for bit once the disabled branch is skipped.
    assert point.gtc == _reference_gtc(initial.values, matrix, region)

    DECISIONS.configure(sample_k=64)
    DECISIONS.enable()
    try:
        on_seconds = _timed(
            lambda: worst_case_gtc(initial, candidates, region, BATCH)
        )
        captured = DECISIONS.summary()
    finally:
        DECISIONS.disable()
        DECISIONS.reset()
    assert captured["probes"] == region.n_vertices

    overhead = off_seconds / reference_seconds - 1.0
    bench_extras("workload", {
        "n_plans": N_PLANS,
        "dimensions": DIMENSIONS,
        "n_vertices": region.n_vertices,
    })
    bench_extras("decisions", {
        "reference_seconds": reference_seconds,
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
        "off_overhead": overhead,
        "on_slowdown": on_seconds / reference_seconds,
    })
    print()
    print(
        f"reference: {reference_seconds:.3f}s   "
        f"instrumented off: {off_seconds:.3f}s "
        f"({overhead:+.2%})   capture on: {on_seconds:.3f}s "
        f"({on_seconds / reference_seconds:.2f}x)"
    )
    # The contract from the issue: the decorated kernel with the log
    # disabled regresses by less than 3%.
    assert overhead < 0.03


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
