"""LSQ — Section 6.1.1 least-squares usage-vector estimation.

Benchmarks the end-to-end estimation loop (plan-stable sampling plus
normal-equation solve) through the narrow optimizer interface and
asserts the paper's validation criterion: total-cost predictions at
held-out cost vectors within one percent.
"""

import numpy as np

from repro.experiments.validation import validate_estimation
from repro.workloads import tpch_query


def test_bench_estimation_q14_shared(benchmark, catalog):
    query = tpch_query("Q14", catalog)
    result = benchmark.pedantic(
        lambda: validate_estimation(
            query, catalog, "shared", delta=100.0
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"plans validated: {len(result.prediction_errors)}, "
        f"worst prediction error: "
        f"{result.worst_prediction_error * 100:.4f}%, "
        f"optimizer calls: {result.optimizer_calls}"
    )
    assert result.prediction_errors
    assert result.meets_paper_criterion  # < 1%


def test_bench_estimation_q3_split(benchmark, catalog):
    query = tpch_query("Q3", catalog)
    result = benchmark.pedantic(
        lambda: validate_estimation(
            query, catalog, "split", delta=100.0, seed=2
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"plans validated: {len(result.prediction_errors)}, "
        f"worst prediction error: "
        f"{result.worst_prediction_error * 100:.4f}%"
    )
    assert result.meets_paper_criterion


def test_bench_normal_equations_solve(benchmark):
    """Microbenchmark of the Gaussian-elimination core."""
    from repro.core.estimation import gaussian_solve

    rng = np.random.default_rng(0)
    n = 18  # the split scenario's largest dimension (Q8)
    matrix = rng.normal(size=(n, n)) + np.eye(n) * n
    rhs = rng.normal(size=n)
    solution = benchmark(gaussian_solve, matrix, rhs)
    assert np.allclose(matrix @ solution, rhs)
