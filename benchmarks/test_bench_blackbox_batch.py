"""BATCH — batched plan evaluation vs per-probe looping.

Measures the payoff of answering probe batches with one ``C @ U.T``
matrix product instead of one Python-level ``optimize`` call per cost
vector, on the heaviest discovery workload (Q5 under the ``split``
scenario: 14 variation groups, 16384 corners per sub-box), and asserts
the speedup contract of the batched discovery path.
"""

import time

import numpy as np

from repro.core.discovery import discover_candidate_plans
from repro.experiments.scenarios import scenario
from repro.optimizer.blackbox import CandidateBackedBlackBox
from repro.optimizer.config import DEFAULT_PARAMETERS
from repro.optimizer.parametric import candidate_plans
from repro.workloads import tpch_query

N_PROBES = 20000


def _q5_split(catalog):
    query = tpch_query("Q5", catalog)
    config = scenario("split")
    layout = config.layout_for(query)
    region = config.region(layout, 100.0)
    candidates = candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region
    )
    return region, candidates


class _LoopOnly:
    """Hides ``optimize_batch``, forcing the per-point fallback."""

    def __init__(self, inner):
        self._inner = inner

    def optimize(self, cost):
        return self._inner.optimize(cost)

    @property
    def call_count(self):
        return self._inner.call_count


def test_bench_probe_rate_loop_vs_batch(benchmark, bench_extras, catalog):
    from repro.core.vectors import CostVector

    region, candidates = _q5_split(catalog)
    box = CandidateBackedBlackBox(candidates)
    grid = region.sample(np.random.default_rng(0), N_PROBES)
    matrix = np.vstack([cost.values for cost in grid])
    space = region.space

    start = time.perf_counter()
    looped = [
        box.optimize(CostVector(space, row)) for row in matrix
    ]
    loop_seconds = time.perf_counter() - start

    batched = benchmark.pedantic(
        lambda: box.optimize_batch(matrix), rounds=1, iterations=1
    )
    batch_seconds = benchmark.stats.stats.mean

    assert [c.signature for c in looped] == [
        c.signature for c in batched
    ]
    bench_extras("workload", "Q5/split")
    bench_extras("n_probes", N_PROBES)
    bench_extras("probe_rate", {
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "loop_probes_per_second": N_PROBES / loop_seconds,
        "batch_probes_per_second": N_PROBES / batch_seconds,
        "speedup": loop_seconds / batch_seconds,
    })
    print()
    print(
        f"loop:  {N_PROBES / loop_seconds:12,.0f} probes/s "
        f"({loop_seconds:.3f}s for {N_PROBES})"
    )
    print(
        f"batch: {N_PROBES / batch_seconds:12,.0f} probes/s "
        f"({batch_seconds:.3f}s for {N_PROBES}), "
        f"speedup {loop_seconds / batch_seconds:.1f}x"
    )
    # 6.4x observed on a single-core container; leave timing headroom.
    assert loop_seconds / batch_seconds >= 3.0


def test_bench_discovery_batched_vs_loop(benchmark, bench_extras, catalog):
    region, candidates = _q5_split(catalog)

    start = time.perf_counter()
    looped = discover_candidate_plans(
        _LoopOnly(CandidateBackedBlackBox(candidates)),
        region,
        max_optimizer_calls=N_PROBES,
        rng=np.random.default_rng(0),
        estimate_usages=False,
    )
    loop_seconds = time.perf_counter() - start

    batched = benchmark.pedantic(
        lambda: discover_candidate_plans(
            CandidateBackedBlackBox(candidates),
            region,
            max_optimizer_calls=N_PROBES,
            rng=np.random.default_rng(0),
            estimate_usages=False,
        ),
        rounds=1,
        iterations=1,
    )
    batch_seconds = benchmark.stats.stats.mean

    assert list(batched.witnesses) == list(looped.witnesses)
    assert batched.optimizer_calls == looped.optimizer_calls
    assert batched.boxes_examined == looped.boxes_examined
    bench_extras("discovery", {
        "loop_seconds": loop_seconds,
        "batch_seconds": batch_seconds,
        "speedup": loop_seconds / batch_seconds,
        "optimizer_calls": batched.optimizer_calls,
        "plans_found": len(batched.witnesses),
    })
    print()
    print(
        f"discovery (Q5/split, {N_PROBES}-call budget): "
        f"loop {loop_seconds:.3f}s -> batch {batch_seconds:.3f}s "
        f"({loop_seconds / batch_seconds:.1f}x), "
        f"{len(batched.witnesses)} plans, "
        f"{batched.optimizer_calls} calls"
    )
    # 4.3x observed against the (already vectorised-key) loop fallback
    # on a single-core container; the pre-batching implementation took
    # 3.1s on the same workload (~28x).  Leave timing headroom.
    assert loop_seconds / batch_seconds >= 2.5
