"""GEN — the generated census on a small seeded stream.

Runs ``repro census --generated`` machinery over 64 random SPJ
queries and asserts the shape the full-scale census shows: regret
regimes ordered by drift level and bounded by Theorem 1's ``δ²``
envelope, a contested-but-not-chaotic plan space, and O(1)
accumulator state.
"""

from repro.experiments import (
    format_generated_census,
    run_generated_census,
)

N_QUERIES = 64
SEED = 0


def test_bench_generated_census(benchmark):
    census = benchmark.pedantic(
        lambda: run_generated_census(N_QUERIES, seed=SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_generated_census(census))
    assert census.n_queries == N_QUERIES
    assert census.sizes.total == N_QUERIES
    # Some generated queries are contested, but the center plan is
    # right in most of cost space on average.
    assert 0.0 < census.contested_fraction < 1.0
    assert census.wrong.mean < 0.5
    # Regret regimes: monotone in delta, below the Theorem 1 bound.
    means = [curve.regret.mean for curve in census.regimes]
    assert means == sorted(means)
    for curve in census.regimes:
        assert 1.0 <= curve.regret.mean <= curve.bound
        assert curve.regret.max <= curve.bound * (1 + 1e-9)
    benchmark.extra_info["n_queries"] = N_QUERIES
    benchmark.extra_info["contested_fraction"] = round(
        census.contested_fraction, 4
    )
    benchmark.extra_info["mean_wrong_fraction"] = round(
        census.wrong.mean, 4
    )
