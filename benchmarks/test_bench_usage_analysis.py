"""RUV — Section 8.2 resource-usage-vector analysis.

Regenerates the candidate-plan complementarity census for all three
storage scenarios and asserts the section's findings:

* shared device: no complementary candidate pairs at all;
* split devices: many complementary pairs, every one access-path or
  temp complementary, none table complementary;
* colocated: access-path complementarity eliminated, temp remains.
"""

from repro.experiments import format_census_table, run_usage_analysis


def test_bench_usage_analysis_shared(benchmark, catalog, queries):
    result = benchmark.pedantic(
        lambda: run_usage_analysis(
            "shared", catalog=catalog, queries=queries
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_census_table(result))
    assert result.queries_with_complementary_plans() == []
    for row in result.rows:
        assert row.constant_bound != float("inf")


def test_bench_usage_analysis_split(benchmark, catalog, queries):
    result = benchmark.pedantic(
        lambda: run_usage_analysis(
            "split", catalog=catalog, queries=queries
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_census_table(result))
    # Paper: complementary plans for most queries (18 of 22 showed the
    # quadratic regime); every class is access-path or temp.
    assert len(result.queries_with_complementary_plans()) >= 16
    totals = result.total_class_counts()
    assert totals.get("table", 0) == 0
    assert totals.get("access-path", 0) > 0
    assert totals.get("temp", 0) > 0


def test_bench_usage_analysis_colocated(benchmark, catalog, queries):
    result = benchmark.pedantic(
        lambda: run_usage_analysis(
            "colocated", catalog=catalog, queries=queries
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_census_table(result))
    totals = result.total_class_counts()
    assert totals.get("access-path", 0) == 0
    assert totals.get("table", 0) == 0
