"""Ablations of the design choices DESIGN.md calls out.

ABL-1  Parametric DP cell cap: candidate-set completeness vs runtime.
ABL-2  Worst-case sweep: exhaustive vertex enumeration vs the
       candidate-set dot-product sweep (the Observation 2 shortcut).
ABL-3  The paper's locked d_s/d_t ratio (Sections 8.1.2/8.1.3) vs
       letting both disk parameters vary freely per device.
ABL-4  Discovery probe budget vs recall of the true candidate set.
"""


import numpy as np
import pytest

from repro.core.costmodel import global_relative_cost
from repro.core.feasible import FeasibleRegion, VariationGroup
from repro.core.worstcase import worst_case_gtc
from repro.experiments.scenarios import scenario
from repro.experiments.validation import validate_discovery
from repro.optimizer import DEFAULT_PARAMETERS, candidate_plans
from repro.workloads import tpch_query


class TestCellCapAblation:
    """ABL-1: smaller caps truncate candidate sets but run faster."""

    @pytest.mark.parametrize("cap", [8, 32, 128])
    def test_bench_cell_cap(self, benchmark, catalog, queries, cap):
        query = queries["Q5"]
        config = scenario("split")
        layout = config.layout_for(query)
        region = config.region(layout, 10000.0)
        result = benchmark.pedantic(
            lambda: candidate_plans(
                query, catalog, DEFAULT_PARAMETERS, layout, region,
                cell_cap=cap,
            ),
            rounds=1,
            iterations=1,
        )
        print(
            f"\ncap={cap}: {len(result)} candidates, "
            f"truncated={result.truncated}"
        )
        assert len(result) >= 1

    def test_cap_monotonicity(self, catalog, queries):
        """Bigger caps can only find more (or equal) candidates."""
        query = queries["Q3"]
        config = scenario("split")
        layout = config.layout_for(query)
        region = config.region(layout, 10000.0)
        sizes = []
        for cap in (4, 16, 64, None):
            result = candidate_plans(
                query, catalog, DEFAULT_PARAMETERS, layout, region,
                cell_cap=cap,
            )
            sizes.append(len(result))
        assert sizes == sorted(sizes)


class TestSweepAblation:
    """ABL-2: the vertex sweep is exact; random sampling undershoots."""

    def test_bench_vertex_sweep(self, benchmark, catalog, queries):
        query = queries["Q8"]
        config = scenario("split")
        layout = config.layout_for(query)
        region = config.region(layout, 10000.0)
        candidates = candidate_plans(
            query, catalog, DEFAULT_PARAMETERS, layout, region
        )
        initial = candidates.plans[candidates.initial_plan_index()]
        point = benchmark.pedantic(
            lambda: worst_case_gtc(
                initial.usage, candidates.usages, region
            ),
            rounds=1,
            iterations=1,
        )
        # 2^16 vertices for the 7-distinct-table Q8.
        print(f"\nexact worst GTC {point.gtc:.3e} over "
              f"{region.n_vertices} vertices")

        rng = np.random.default_rng(0)
        sampled = max(
            global_relative_cost(initial.usage, candidates.usages, cost)
            for cost in region.sample(rng, 2000)
        )
        print(f"2000 random samples reach only {sampled:.3e}")
        assert sampled <= point.gtc * (1 + 1e-9)
        # Random sampling badly underestimates the worst case.
        assert sampled < point.gtc / 10


class TestLockedRatioAblation:
    """ABL-3: freeing d_s/d_t doubles dimensions; worst case grows."""

    def test_bench_locked_vs_free(self, benchmark, catalog, queries):
        query = queries["Q14"]
        config = scenario("split")
        layout = config.layout_for(query)
        locked_region = config.region(layout, 100.0)

        def free_region():
            # One variation group PER DIMENSION instead of per device.
            groups = tuple(
                VariationGroup(name, (layout.space.index(name),))
                for name in layout.space.names
            )
            return FeasibleRegion(layout.center_costs(), 100.0, groups)

        candidates = candidate_plans(
            query, catalog, DEFAULT_PARAMETERS, layout,
            free_region(), cell_cap=None,
        )
        initial = candidates.plans[candidates.initial_plan_index()]

        locked = worst_case_gtc(
            initial.usage, candidates.usages, locked_region
        )
        free = benchmark.pedantic(
            lambda: worst_case_gtc(
                initial.usage, candidates.usages, free_region()
            ),
            rounds=1,
            iterations=1,
        )
        print(
            f"\nlocked ratio: GTC {locked.gtc:.4g} "
            f"({locked_region.n_vertices} vertices); "
            f"free: GTC {free.gtc:.4g} "
            f"({free_region().n_vertices} vertices)"
        )
        # Freeing the ratio can only widen the feasible region.
        assert free.gtc >= locked.gtc * (1 - 1e-9)


class TestDiscoveryBudgetAblation:
    """ABL-4: recall grows with the optimizer-call budget."""

    @pytest.mark.parametrize("budget", [50, 500, 20000])
    def test_bench_budget(self, benchmark, catalog, budget):
        query = tpch_query("Q14", catalog)
        result = benchmark.pedantic(
            lambda: validate_discovery(
                query, catalog, "shared", delta=100.0,
                max_optimizer_calls=budget,
            ),
            rounds=1,
            iterations=1,
        )
        print(f"\nbudget={budget}: recall {result.recall:.2f}")
        assert not result.spurious

    def test_recall_monotone_in_budget(self, catalog):
        query = tpch_query("Q14", catalog)
        recalls = [
            validate_discovery(
                query, catalog, "shared", delta=100.0,
                max_optimizer_calls=budget,
            ).recall
            for budget in (50, 2000, 40000)
        ]
        assert recalls[0] <= recalls[-1]
        assert recalls[-1] >= 0.75


class TestScaleFactorAblation:
    """ABL-5: does the Figure 6 shape survive at other scale factors?

    The paper ran only SF 100; the quadratic regime is a property of
    plan-space structure (complementary plans), not of data volume, so
    the growth classification should be stable across scales.
    """

    @pytest.mark.parametrize("scale", [1.0, 100.0])
    def test_bench_scale(self, benchmark, scale):
        from repro.catalog import build_tpch_catalog
        from repro.experiments import run_figure
        from repro.workloads import build_tpch_queries

        catalog = build_tpch_catalog(scale)
        queries = build_tpch_queries(catalog)
        subset = {k: queries[k] for k in ("Q3", "Q14", "Q20")}
        result = benchmark.pedantic(
            lambda: run_figure(
                "split", catalog=catalog, queries=subset,
                deltas=(1.0, 100.0, 10000.0),
            ),
            rounds=1,
            iterations=1,
        )
        census = result.growth_census()
        print(f"\nSF {scale:g}: growth census {census}")
        # The quadratic regime persists at both scales.
        assert census.get("quadratic", 0) >= 2
