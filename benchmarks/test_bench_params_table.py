"""TAB-PARAMS — the Section 7.3 system parameter table.

Trivial to compute; benchmarked for completeness of the experiment
index and printed exactly as the paper lays it out.
"""

from repro.experiments import format_parameter_table
from repro.optimizer.config import DEFAULT_PARAMETERS


def test_bench_parameter_table(benchmark):
    rows = benchmark(DEFAULT_PARAMETERS.as_db2_table)
    print()
    print(format_parameter_table(rows))
    assert ("DFT_QUERYOPT", "7") in rows
    assert ("OPT_BUFFPAGE", "640000") in rows
    assert ("OPT_SORTHEAP", "128000") in rows
    assert len(rows) == 15
