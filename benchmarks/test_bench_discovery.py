"""DISC — Section 6.2.1 black-box candidate plan discovery.

Benchmarks the subdivision-based discovery loop and asserts its
contract: every plan it reports is truly candidate optimal, and on the
tractable scenarios it finds the complete set (the paper managed 22/22
on the easy configurations and 16/22 on the hardest)."""

from repro.experiments.validation import validate_discovery
from repro.workloads import tpch_query


def test_bench_discovery_q14_shared(benchmark, catalog):
    query = tpch_query("Q14", catalog)
    result = benchmark.pedantic(
        lambda: validate_discovery(
            query, catalog, "shared", delta=100.0
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"true candidates: {len(result.true_signatures)}, "
        f"found: {len(result.found_signatures)}, "
        f"recall: {result.recall:.2f}, "
        f"calls: {result.optimizer_calls}"
    )
    assert not result.spurious
    assert result.recall >= 0.75


def test_bench_discovery_q14_split(benchmark, catalog):
    query = tpch_query("Q14", catalog)
    result = benchmark.pedantic(
        lambda: validate_discovery(
            query, catalog, "split", delta=100.0,
            max_optimizer_calls=60000,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"true candidates: {len(result.true_signatures)}, "
        f"found: {len(result.found_signatures)}, "
        f"recall: {result.recall:.2f}, "
        f"calls: {result.optimizer_calls}"
    )
    assert not result.spurious
    assert result.recall >= 0.6


def test_bench_discovery_honest_blackbox(benchmark, catalog):
    """Discovery against the full-DP black box (every probe re-runs
    the optimizer, like re-invoking DB2 per cost vector)."""
    query = tpch_query("Q14", catalog)
    result = benchmark.pedantic(
        lambda: validate_discovery(
            query, catalog, "shared", delta=100.0,
            honest_blackbox=True, max_optimizer_calls=3000,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"recall {result.recall:.2f} with "
        f"{result.optimizer_calls} full optimizer runs"
    )
    assert not result.spurious
