"""FIG6 — worst-case GTC, every table and index group on its own device.

Regenerates Figure 6: the 2k+2-resource scenario where inaccurate
storage costs hurt most.  Asserts the paper's reading: a clear
majority of the 22 queries grow ~quadratically with the error level
(Theorem 1 regime; the paper saw 18/22), the worst-case reaches many
orders of magnitude, and query 20 ranks among the most sensitive.
"""

from repro.experiments import (
    DEFAULT_DELTAS,
    format_figure_summary,
    format_figure_table,
    run_figure,
)


def test_bench_figure6(benchmark, catalog, queries):
    result = benchmark.pedantic(
        lambda: run_figure(
            "split", catalog=catalog, queries=queries,
            deltas=DEFAULT_DELTAS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure_table(result))
    print(format_figure_summary(result))

    assert len(result.curves) == 22
    census = result.growth_census()
    assert census.get("quadratic", 0) >= 12  # paper: 18 of 22
    assert result.max_final_gtc() > 1e4

    ranked = sorted(result.curves, key=lambda c: -c.final_gtc)
    top_names = [curve.query_name for curve in ranked[:5]]
    assert "Q20" in top_names  # the paper's most-sensitive query

    # Single-table queries cannot be hurt by splitting devices.
    by_query = result.by_query()
    for name in ("Q1", "Q6"):
        assert by_query[name].growth_class() == "constant"
