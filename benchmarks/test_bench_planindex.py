"""PLANINDEX — sublinear point location vs the dense argmin kernel.

The experiment the index exists for: a large candidate set (far beyond
any single TPC-H query, the regime of multi-query or cached plan
pools), a big Monte-Carlo probe batch, and the question *which plan
wins where*.  The benchmark builds the index once (build time is
reported separately — it is amortized over every sweep that reuses the
candidate set) and times lookups only, asserting both the >= 10x
speedup contract and bitwise parity with the dense kernel.
"""

import time

import numpy as np

from repro.core.planindex import PlanIndex, dense_owner_batch

#: Plans in the candidate pool.  Structured like real candidate sets:
#: plans share subplan building blocks, so usage vectors cluster.
N_PLANS = 4096
DIMENSIONS = 12
N_PROBES = 20000
OPERATOR_POOL = 40


def _structured_pool(rng):
    ops = np.exp(rng.normal(0.0, 1.0, size=(OPERATOR_POOL, DIMENSIONS)))
    ops *= rng.random((OPERATOR_POOL, DIMENSIONS)) < 0.4
    picks = rng.random((N_PLANS, OPERATOR_POOL)) < 0.15
    base = np.exp(rng.normal(-2.0, 0.5, size=(N_PLANS, DIMENSIONS)))
    return picks @ ops + base


def test_bench_owner_batch_index_vs_dense(benchmark, bench_extras):
    rng = np.random.default_rng(0)
    matrix = _structured_pool(rng)
    probes = np.exp(
        rng.uniform(-np.log(100.0), np.log(100.0),
                    size=(N_PROBES, DIMENSIONS))
    )

    start = time.perf_counter()
    index = PlanIndex(matrix, min_plans=1)
    build_seconds = time.perf_counter() - start
    assert index.active

    start = time.perf_counter()
    dense = dense_owner_batch(matrix, probes)
    dense_seconds = time.perf_counter() - start

    indexed = benchmark.pedantic(
        lambda: index.owner_batch(probes), rounds=1, iterations=1
    )
    index_seconds = benchmark.stats.stats.mean

    np.testing.assert_array_equal(indexed, dense)

    speedup = dense_seconds / index_seconds
    fallback_fraction = index.stats["fallbacks"] / index.stats["probes"]
    bench_extras("workload", {
        "n_plans": N_PLANS,
        "dimensions": DIMENSIONS,
        "n_probes": N_PROBES,
    })
    bench_extras("planindex", {
        "build_seconds": build_seconds,
        "dense_seconds": dense_seconds,
        "index_seconds": index_seconds,
        "speedup": speedup,
        "fallback_fraction": fallback_fraction,
        "n_groups": index.n_groups,
        "n_witnesses": index.n_witnesses,
    })
    print()
    print(
        f"dense: {N_PROBES / dense_seconds:12,.0f} probes/s "
        f"({dense_seconds:.3f}s for {N_PROBES} over {N_PLANS} plans)"
    )
    print(
        f"index: {N_PROBES / index_seconds:12,.0f} probes/s "
        f"({index_seconds:.3f}s, built in {build_seconds:.3f}s), "
        f"speedup {speedup:.1f}x, "
        f"{fallback_fraction:.2%} dense fallbacks"
    )
    # 12.7x observed on a single-core container; the issue's contract
    # is >= 10x at >= 1000 candidates.  Timing variance headroom only.
    assert speedup >= 10.0
    # The cascade must stay sublinear, not quietly degrade to dense.
    assert fallback_fraction < 0.05
