"""FIG7 — worst-case GTC, one device per table with its indexes.

Regenerates Figure 7: the k+2-resource scenario co-locating each
table with its own indexes.  Asserts the paper's reading: results fall
between Figures 5 and 6 — fewer quadratic curves than Figure 6 (the
access-path complementary plans are gone), per-query worst cases never
exceed the split scenario's.
"""

from repro.experiments import (
    DEFAULT_DELTAS,
    format_figure_summary,
    format_figure_table,
    run_figure,
)


def test_bench_figure7(benchmark, catalog, queries):
    split = run_figure(
        "split", catalog=catalog, queries=queries,
        deltas=DEFAULT_DELTAS,
    )
    result = benchmark.pedantic(
        lambda: run_figure(
            "colocated", catalog=catalog, queries=queries,
            deltas=DEFAULT_DELTAS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure_table(result))
    print(format_figure_summary(result))

    assert len(result.curves) == 22
    quadratic_colocated = result.growth_census().get("quadratic", 0)
    quadratic_split = split.growth_census().get("quadratic", 0)
    # Strictly fewer quadratic curves than Figure 6 (paper: 5-7 vs 18).
    assert quadratic_colocated < quadratic_split
    # Per-query domination: colocated <= split (region nesting).
    split_by_query = split.by_query()
    for curve in result.curves:
        other = split_by_query[curve.query_name]
        if curve.truncated or other.truncated:
            continue
        assert curve.final_gtc <= other.final_gtc * (1 + 1e-9)
