"""EXPECTED — Monte-Carlo expected regret (framework extension).

The worst-case figures answer "how bad can it get"; this bench answers
"how bad is it typically" under log-uniform random drift, on the same
candidate sets.  Headline: even in the split scenario, median regret
stays small — the quadratic blow-ups of Figure 6 live in adversarial
corners of the feasible region.
"""

from repro.experiments import format_expected_table, run_expected_regret


def test_bench_expected_regret_split(benchmark, catalog, queries):
    rows = benchmark.pedantic(
        lambda: run_expected_regret(
            "split", catalog=catalog, queries=queries,
            delta=100.0, n_samples=2000,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_expected_table(rows))
    assert len(rows) == 22
    medians = sorted(row.median_gtc for row in rows)
    # Median-of-medians stays modest even though Figure 6's worst
    # cases reach 1e3+ at the same delta.
    assert medians[len(medians) // 2] < 10.0
    for row in rows:
        assert row.mean_gtc >= 1.0 - 1e-9
        assert row.max_sampled_gtc <= row.delta**2 * (1 + 1e-6)
