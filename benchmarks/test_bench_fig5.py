"""FIG5 — worst-case GTC, all tables and indexes on one device.

Regenerates Figure 5 of the paper: 22 curves of worst-case global
relative cost vs the error level delta, under the shared-device
scenario (three resources: CPU, d_s, d_t).  Prints the series and
asserts the paper's reading: every curve flattens to a constant
(Theorem 2 regime); none grows quadratically.
"""

from repro.experiments import (
    DEFAULT_DELTAS,
    format_figure_summary,
    format_figure_table,
    run_figure,
)


def test_bench_figure5(benchmark, catalog, queries):
    result = benchmark.pedantic(
        lambda: run_figure(
            "shared", catalog=catalog, queries=queries,
            deltas=DEFAULT_DELTAS,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_figure_table(result))
    print(format_figure_summary(result))

    assert len(result.curves) == 22
    census = result.growth_census()
    # Paper: all queries follow the constant bound on one device.
    assert census.get("quadratic", 0) == 0
    # Paper: worst plan within a small constant of optimal (theirs: 5;
    # our plan space differs in detail — same order of magnitude).
    assert result.max_final_gtc() < 100
    for curve in result.curves:
        assert curve.curve.points[0].gtc == 1.0
