"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation
(see DESIGN.md's experiment index).  Benchmarks run the real full-size
computation once per measurement (``benchmark.pedantic`` with a single
round) — they are experiment drivers first, timers second.
"""

import pytest

from repro.catalog import build_tpch_catalog
from repro.workloads import build_tpch_queries


@pytest.fixture(scope="session")
def catalog():
    """The paper's 100 GB TPC-H statistics."""
    return build_tpch_catalog(100)


@pytest.fixture(scope="session")
def queries(catalog):
    """All 22 TPC-H queries."""
    return build_tpch_queries(catalog)
