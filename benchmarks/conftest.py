"""Shared fixtures + telemetry plugin for the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation
(see DESIGN.md's experiment index).  Benchmarks run the real full-size
computation once per measurement (``benchmark.pedantic`` with a single
round) — they are experiment drivers first, timers second.

Telemetry: every test that uses the ``benchmark`` fixture is recorded
automatically, and at session end one schema-versioned
``BENCH_<module>.json`` record per benchmark module (the stem minus
the ``test_bench_`` prefix) is written via
:class:`repro.obs.bench.BenchRecorder` — timing stats per test
(median/IQR/rounds), git SHA, environment, catalog digest, the metrics
snapshot, plus anything a test attached through the ``bench_extras``
fixture.  ``REPRO_BENCH_DIR`` moves all records; the historical
``BENCH_JSON`` variable still redirects the blackbox-batch record but
is deprecated and warns.  Gate records against a baseline with
``repro bench BENCH_x.json --compare benchmarks/baselines/BENCH_x.json``.

Every flushed record is additionally appended to the perf-history
store (``benchmarks/history.jsonl`` or ``$REPRO_HISTORY_DIR``) — one
``bench:<module>/<test>`` series point per median — feeding the
``repro bench trend`` multi-run regression gate.  Set
``REPRO_NO_HISTORY=1`` to skip the append (throwaway runs).
"""

import logging
import os

import pytest

from repro.catalog import build_tpch_catalog
from repro.obs import catalog_digest
from repro.obs.bench import BenchRecorder, load_bench_record
from repro.workloads import build_tpch_queries

_RECORDER = BenchRecorder(legacy_env={"blackbox_batch": "BENCH_JSON"})


def _group_for(request) -> str:
    stem = request.node.path.stem
    return stem.removeprefix("test_bench_") or stem


@pytest.fixture(scope="session")
def catalog():
    """The paper's 100 GB TPC-H statistics."""
    built = build_tpch_catalog(100)
    _RECORDER.catalog_sha = catalog_digest(built)
    return built


@pytest.fixture(scope="session")
def queries(catalog):
    """All 22 TPC-H queries."""
    return build_tpch_queries(catalog)


@pytest.fixture(autouse=True)
def _bench_telemetry(request):
    """Record the timing stats of every benchmarked test."""
    # Grab the fixture object up front: by teardown time pytest has
    # already finalized it and getfixturevalue would refuse.
    fixture = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if fixture is None:
        return
    metadata = getattr(fixture, "stats", None)
    stats = getattr(metadata, "stats", None)
    if stats is None:  # fixture requested but never run
        return
    _RECORDER.record(
        _group_for(request),
        request.node.name,
        {
            "median_seconds": stats.median,
            "iqr_seconds": stats.iqr,
            "rounds": stats.rounds,
            "mean_seconds": stats.mean,
            "min_seconds": stats.min,
            "max_seconds": stats.max,
        },
    )


@pytest.fixture
def bench_extras(request):
    """Attach free-form context to this module's BENCH record.

    Usage::

        def test_bench_foo(benchmark, bench_extras):
            ...
            bench_extras("probe_rate", {"speedup": 6.4})
    """
    group = _group_for(request)

    def add(key, value):
        _RECORDER.add_extra(group, key, value)

    return add


def pytest_sessionfinish(session, exitstatus):
    """Flush BENCH records and append them to the history store."""
    from repro.obs.history import append_history, bench_history_entries

    written = _RECORDER.flush()
    if os.environ.get("REPRO_NO_HISTORY"):
        return
    for path in written:
        try:
            record = load_bench_record(path)
            append_history(
                bench_history_entries(record, source=str(path))
            )
        except (OSError, ValueError) as exc:
            # Telemetry must never fail the benchmark session.
            logging.getLogger("repro.bench").warning(
                "could not append %s to the perf history: %s",
                path, exc,
            )
