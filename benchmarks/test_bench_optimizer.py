"""Optimizer microbenchmarks: scalar DP and parametric enumeration.

Not a paper artefact per se, but the substrate's cost drives every
experiment above; these benchmarks track it per query shape.
"""

import pytest

from repro.experiments.scenarios import scenario
from repro.optimizer import (
    DEFAULT_PARAMETERS,
    enumerate_root_plans,
    optimize_scalar,
)

# Representative shapes: single-table, 3-chain, largest (8 aliases).
QUERY_SAMPLE = ("Q1", "Q3", "Q8", "Q20")


@pytest.mark.parametrize("name", QUERY_SAMPLE)
def test_bench_scalar_optimize(benchmark, catalog, queries, name):
    query = queries[name]
    layout = scenario("shared").layout_for(query)
    cost = layout.center_costs()
    plan = benchmark(
        optimize_scalar, query, catalog, DEFAULT_PARAMETERS, layout, cost
    )
    assert plan.node.aliases() == frozenset(query.aliases)


@pytest.mark.parametrize("name", QUERY_SAMPLE)
def test_bench_parametric_enumeration_split(
    benchmark, catalog, queries, name
):
    query = queries[name]
    layout = scenario("split").layout_for(query)
    plans, __ = benchmark.pedantic(
        lambda: enumerate_root_plans(
            query, catalog, DEFAULT_PARAMETERS, layout, cell_cap=64
        ),
        rounds=1,
        iterations=1,
    )
    assert plans
